"""Fail-safe manager: the firmware's *correct* reactions to faults.

The paper's central observation is that developers apply default
fail-safe actions (return to launch, land) "assuming they can be
executed effectively"; sensor bugs are the places where that assumption
breaks.  The fail-safe manager implements the *intended* behaviour:

* loss of every instance of a sensor type triggers the configured
  fail-safe action for that type (land for GPS/compass loss, land for a
  dual-IMU loss, continue-on-GPS-altitude for barometer loss);
* a low or failed battery triggers the battery fail-safe (RTL, or land
  when the position estimate is unusable);
* a fence breach triggers the fence fail-safe (RTL).

Failures of a *backup* instance -- or of a primary with a healthy backup
-- fail over silently, matching real firmware.  The bug registry is
consulted on the same events; when a bug matches, its effect overrides
the correct handling through the effect engine (see
:mod:`repro.firmware.effects`), which is how the narrow, mode-specific
mishandling the paper describes is realised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.firmware.estimator import EstimatorStatus, SensorFailureEvent, StateEstimate
from repro.firmware.modes import FlightMode
from repro.firmware.params import FirmwareParameters
from repro.sensors.base import SensorType


class FailsafeAction(enum.Enum):
    """Actions the fail-safe manager can request."""

    NONE = "none"
    CONTINUE_DEGRADED = "continue-degraded"
    LAND = "land"
    RTL = "rtl"
    DISARM = "disarm"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FailsafeEvent:
    """One fail-safe decision taken during the run."""

    time: float
    reason: str
    action: FailsafeAction
    sensor_type: Optional[SensorType] = None

    def describe(self) -> str:
        """One-line description used in status text and reports."""
        return f"failsafe {self.action.value} at t={self.time:.2f}s: {self.reason}"


class FailsafeManager:
    """Maps sensor failures, battery state and fence breaches to actions."""

    def __init__(self, params: FirmwareParameters) -> None:
        self._params = params
        self._events: List[FailsafeEvent] = []
        self._battery_failsafe_fired = False
        self._fence_failsafe_fired = False

    @property
    def events(self) -> List[FailsafeEvent]:
        """Every fail-safe decision taken so far."""
        return list(self._events)

    @property
    def latest_action(self) -> FailsafeAction:
        """The most recent fail-safe action (NONE when there were none)."""
        return self._events[-1].action if self._events else FailsafeAction.NONE

    def _record(self, event: FailsafeEvent) -> FailsafeEvent:
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # Sensor failures
    # ------------------------------------------------------------------
    def handle_sensor_failure(
        self,
        event: SensorFailureEvent,
        status: EstimatorStatus,
        flight_mode: FlightMode,
        airborne: bool,
    ) -> FailsafeEvent:
        """Decide the correct reaction to one sensor-instance failure."""
        sensor_type = event.sensor_id.sensor_type
        time = event.time

        if not event.type_exhausted and sensor_type not in (
            SensorType.GPS,
            SensorType.BAROMETER,
            SensorType.BATTERY,
        ):
            # A redundant instance remains: fail over, keep flying.
            return self._record(
                FailsafeEvent(
                    time=time,
                    reason=f"{event.sensor_id.label} failed; backup instance took over",
                    action=FailsafeAction.CONTINUE_DEGRADED,
                    sensor_type=sensor_type,
                )
            )

        if not airborne:
            # On the ground the safe reaction is to refuse/stop flight.
            return self._record(
                FailsafeEvent(
                    time=time,
                    reason=f"{event.sensor_id.label} failed on the ground; holding",
                    action=FailsafeAction.DISARM,
                    sensor_type=sensor_type,
                )
            )

        if sensor_type == SensorType.GPS and self._params.gps_failsafe_enabled:
            return self._record(
                FailsafeEvent(
                    time=time,
                    reason="GPS failed in flight; landing on remaining sensors",
                    action=FailsafeAction.LAND,
                    sensor_type=sensor_type,
                )
            )
        if sensor_type == SensorType.BAROMETER:
            action = (
                FailsafeAction.CONTINUE_DEGRADED
                if status.is_healthy(SensorType.GPS)
                else FailsafeAction.LAND
            )
            return self._record(
                FailsafeEvent(
                    time=time,
                    reason="barometer failed; using GPS altitude"
                    if action is FailsafeAction.CONTINUE_DEGRADED
                    else "barometer failed with no GPS; landing",
                    action=action,
                    sensor_type=sensor_type,
                )
            )
        if sensor_type == SensorType.BATTERY:
            return self._battery_failsafe(time, status)
        # Dual IMU loss, compass loss: land.
        return self._record(
            FailsafeEvent(
                time=time,
                reason=f"all {sensor_type.value} instances failed; landing",
                action=FailsafeAction.LAND,
                sensor_type=sensor_type,
            )
        )

    # ------------------------------------------------------------------
    # Battery and fence
    # ------------------------------------------------------------------
    def check_battery(
        self, remaining: Optional[float], status: EstimatorStatus, time: float
    ) -> Optional[FailsafeEvent]:
        """Fire the battery fail-safe when the pack runs low."""
        if not self._params.battery_failsafe_enabled or self._battery_failsafe_fired:
            return None
        if remaining is None or remaining > self._params.battery_failsafe_level:
            return None
        self._battery_failsafe_fired = True
        return self._battery_failsafe(time, status)

    def _battery_failsafe(self, time: float, status: EstimatorStatus) -> FailsafeEvent:
        self._battery_failsafe_fired = True
        # The correct behaviour: RTL when the position estimate is still
        # valid, otherwise land straight down.
        if status.position_valid:
            action = FailsafeAction.RTL
            reason = "battery failsafe: returning to launch"
        else:
            action = FailsafeAction.LAND
            reason = "battery failsafe without position estimate: landing"
        return self._record(
            FailsafeEvent(time=time, reason=reason, action=action, sensor_type=SensorType.BATTERY)
        )

    def check_fence(self, breached: bool, time: float) -> Optional[FailsafeEvent]:
        """Fire the fence fail-safe on the first breach."""
        if not self._params.fence_enabled or not breached or self._fence_failsafe_fired:
            return None
        self._fence_failsafe_fired = True
        return self._record(
            FailsafeEvent(
                time=time,
                reason="fence breach: returning to launch",
                action=FailsafeAction.RTL,
            )
        )
