"""The PX4-flavoured firmware (PX4 1.9.0 analogue)."""

from __future__ import annotations

from typing import Optional

from repro.firmware.base import ControlFirmware
from repro.firmware.bugs import BugRegistry, px4_bug_registry
from repro.firmware.modes import PX4_MODE_NAMES
from repro.firmware.params import FirmwareParameters, PX4_DEFAULT_PARAMETERS
from repro.hinj.instrumentation import HinjInterface
from repro.mavlink.link import MavLink
from repro.sensors.suite import SensorSuite, iris_sensor_suite
from repro.sim.environment import Environment
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters


class Px4Firmware(ControlFirmware):
    """PX4-style firmware.

    Ships with the four latent (previously unknown) PX4 bugs of Table II
    enabled, and the previously-known PX4-13291 registered but disabled
    until re-inserted.
    """

    name = "px4"
    mode_name_table = PX4_MODE_NAMES

    def __init__(
        self,
        suite: Optional[SensorSuite] = None,
        airframe: AirframeParameters = IRIS_QUADCOPTER,
        params: Optional[FirmwareParameters] = None,
        environment: Optional[Environment] = None,
        link: Optional[MavLink] = None,
        hinj: Optional[HinjInterface] = None,
        bug_registry: Optional[BugRegistry] = None,
        dt: float = 0.02,
        initial_hold_point=(0.0, 0.0),
    ) -> None:
        super().__init__(
            suite=suite if suite is not None else iris_sensor_suite(),
            airframe=airframe,
            params=params if params is not None else PX4_DEFAULT_PARAMETERS,
            environment=environment,
            link=link,
            hinj=hinj,
            bug_registry=bug_registry if bug_registry is not None else px4_bug_registry(),
            dt=dt,
            initial_hold_point=initial_hold_point,
        )


FIRMWARE_FLAVOURS = {
    "ardupilot": "repro.firmware.ardupilot.ArduPilotFirmware",
    "px4": "repro.firmware.px4.Px4Firmware",
}
"""Names of the shipped firmware flavours (for documentation/tests)."""
