"""Sensor bugs: descriptors, triggers, effects, and the registry.

The paper's evaluation revolves around concrete sensor bugs in the
firmware's fault-handling logic:

* Table II lists ten *previously unknown* bugs Avis found in the current
  code base (six in ArduPilot, four in PX4).  Here they exist as latent,
  enabled-by-default code paths in the corresponding firmware flavour.
* Table V re-inserts five *previously known* bugs (APM-4455, APM-4679,
  APM-5428, APM-9349, PX4-13291) and checks whether each approach
  re-discovers them.  Those are disabled by default and can be
  re-inserted through :meth:`BugRegistry.reinsert`.

Each bug is a :class:`BugDescriptor` made of a :class:`BugTrigger` (which
sensor failure, in which operating-mode window, under what altitude and
joint-failure conditions the mishandling engages -- the "failure handling
logic that is too narrowly tailored to specific operating modes") and an
:class:`EffectScript` describing *how* the firmware mishandles it (frozen
estimates, wrong fail-safe, throttle cuts ...).  The firmware's bug-effect
engine (:mod:`repro.firmware.effects`) interprets the script; the
observable outcome is the bug's symptom: a crash, a fly-away, or a
takeoff failure.

The registry is also the ground truth the evaluation harness uses to map
unsafe conditions back to root-cause bugs (the paper does this manually
by studying the reports; the simulation can do it exactly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.firmware.modes import FlightMode, OperatingModeLabel
from repro.sensors.base import SensorRole, SensorType


class BugSymptom(enum.Enum):
    """Observable symptom classes used in Table II."""

    CRASH = "Crash"
    FLY_AWAY = "Fly Away"
    TAKEOFF_FAILURE = "Takeoff Failure"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class BugTrigger:
    """The narrow condition under which a bug's mishandling engages.

    Attributes
    ----------
    sensor_type:
        The sensor type whose failure the buggy handler mishandles.
    mode_labels:
        Operating-mode labels (or prefixes, see ``prefix_match``) during
        which the failure is mishandled.  ``None`` means any mode.
    prefix_match:
        When True, a label matches if it *starts with* one of
        ``mode_labels`` -- used for waypoint legs (``waypoint`` matches
        ``waypoint-1``, ``waypoint-2`` ...).
    min_altitude / max_altitude:
        Estimated-altitude window (metres) for the mishandling.
    requires_failed_types:
        Additional sensor types that must *already* be failed for the bug
        to trigger (PX4-13291 needs GPS *and* battery).
    primary_only:
        When True the bug only triggers when the failed instance was the
        one the firmware was actively using (primary, or the backup that
        had taken over); failures of idle backups fail over cleanly.
    max_seconds_into_mode:
        When set, the failure must occur within this many seconds of the
        firmware *entering* the matching operating mode.  This encodes the
        paper's central observation: sensor-bug manifestations are
        time-sensitive and cluster around mode transitions (Figure 1's
        crash only reproduces when the IMU fails in a narrow window).
    """

    sensor_type: SensorType
    mode_labels: Optional[FrozenSet[str]] = None
    prefix_match: bool = False
    min_altitude: Optional[float] = None
    max_altitude: Optional[float] = None
    requires_failed_types: FrozenSet[SensorType] = frozenset()
    primary_only: bool = True
    max_seconds_into_mode: Optional[float] = None

    def matches(
        self,
        sensor_type: SensorType,
        mode_label: str,
        altitude: float,
        failed_types: FrozenSet[SensorType],
        was_active_instance: bool,
        seconds_into_mode: float = 0.0,
    ) -> bool:
        """Return True when a failure in this context engages the bug."""
        if sensor_type != self.sensor_type:
            return False
        if self.primary_only and not was_active_instance:
            return False
        if self.mode_labels is not None:
            if self.prefix_match:
                if not any(mode_label.startswith(prefix) for prefix in self.mode_labels):
                    return False
            elif mode_label not in self.mode_labels:
                return False
        if self.min_altitude is not None and altitude < self.min_altitude:
            return False
        if self.max_altitude is not None and altitude > self.max_altitude:
            return False
        if not self.requires_failed_types <= failed_types:
            return False
        if (
            self.max_seconds_into_mode is not None
            and seconds_into_mode > self.max_seconds_into_mode
        ):
            return False
        return True


@dataclass(frozen=True)
class EffectScript:
    """How the firmware mishandles the failure once a bug has triggered.

    The fields are primitives the bug-effect engine knows how to apply;
    one bug usually combines a corruption of the state estimate with a
    wrong fail-safe decision, because that combination -- "the difference
    between expectations, modeled state and reality" -- is what the paper
    identifies as the source of severe outcomes.
    """

    #: Freeze the horizontal position/velocity estimate at its value when
    #: the bug triggered (the navigation keeps chasing a stale position).
    freeze_horizontal: bool = False
    #: Freeze the altitude estimate (the altitude controller keeps
    #: climbing/descending toward a target it can never observe reaching).
    freeze_altitude: bool = False
    #: Freeze the heading estimate (the controller decomposes thrust along
    #: a stale heading and veers off track).
    freeze_heading: bool = False
    #: Constant error added to the altitude estimate (a wrong altitude
    #: reference after switching to GPS altitude, as in Figure 1).
    altitude_offset: float = 0.0
    #: Zero out the vertical-velocity estimate (climb not sensed ->
    #: overshoot, as in APM-16021).
    vertical_velocity_blind: bool = False
    #: Switch to this flight mode (the wrong fail-safe) after
    #: ``force_mode_delay_s`` seconds.
    force_mode: Optional[FlightMode] = None
    force_mode_delay_s: float = 0.0
    #: Cut the throttle once the *estimated* altitude drops below this
    #: value (models the "state estimate reset" near the end of landing in
    #: APM-16967, or an EKF fail-safe killing the motors).
    throttle_cut_below_altitude: Optional[float] = None
    #: Cut the throttle as soon as the vehicle is airborne (models a
    #: tip-over right after lift-off, PX4-17057).
    throttle_cut_once_airborne: bool = False
    #: Refuse to produce climb authority in takeoff (the vehicle never
    #: leaves the ground -- a takeoff failure).
    block_takeoff: bool = False
    #: Abort the takeoff at this altitude and hover there instead of
    #: continuing to the commanded altitude.
    abort_takeoff_at_altitude: Optional[float] = None


@dataclass(frozen=True)
class BugDescriptor:
    """One sensor bug, as listed in Table II or Table V of the paper."""

    bug_id: str
    firmware: str
    symptom: BugSymptom
    sensor_type: SensorType
    failure_moment: str
    summary: str
    trigger: BugTrigger
    effect: EffectScript
    #: True for previously-known bugs (Table V) that must be explicitly
    #: re-inserted; False for the latent, previously-unknown bugs of
    #: Table II that ship enabled in the "current code base".
    known: bool = False
    #: Whether firmware developers confirmed the bug (2 of the 10 new
    #: bugs had been confirmed at the time of writing).
    developer_confirmed: bool = False
    #: Whether Stratified BFI also found the bug in Table II / Table V
    #: (recorded for the experiment harness' expectations, not used by
    #: the firmware).
    found_by_stratified_bfi: bool = False


@dataclass(frozen=True)
class BugTriggerEvent:
    """A record of a bug actually engaging during a simulated run."""

    bug_id: str
    time: float
    mode_label: str
    sensor_type: SensorType
    altitude: float

    def describe(self) -> str:
        """One-line description for reports."""
        return (
            f"{self.bug_id} engaged at t={self.time:.2f}s in mode "
            f"'{self.mode_label}' (altitude {self.altitude:.1f} m) after a "
            f"{self.sensor_type.value} failure"
        )


class BugRegistry:
    """The set of bugs present in one firmware instance.

    A registry is created per firmware instance (and therefore per test
    run).  Latent bugs are enabled from the start; known bugs become
    active only after :meth:`reinsert`.  During the run the firmware's
    fail-safe path calls :meth:`match` whenever a sensor failure is
    handled; matches are recorded as :class:`BugTriggerEvent` so the
    evaluation harness can attribute unsafe conditions to root causes.
    """

    def __init__(self, descriptors: Iterable[BugDescriptor] = ()) -> None:
        self._descriptors: Dict[str, BugDescriptor] = {}
        self._enabled: Dict[str, bool] = {}
        self._events: List[BugTriggerEvent] = []
        for descriptor in descriptors:
            self.add(descriptor)

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def add(self, descriptor: BugDescriptor) -> None:
        """Register a bug; latent bugs are enabled immediately."""
        if descriptor.bug_id in self._descriptors:
            raise ValueError(f"duplicate bug id {descriptor.bug_id}")
        self._descriptors[descriptor.bug_id] = descriptor
        self._enabled[descriptor.bug_id] = not descriptor.known

    def reinsert(self, bug_id: str) -> None:
        """Re-insert (enable) a previously-known bug, as in Table V."""
        if bug_id not in self._descriptors:
            raise KeyError(f"unknown bug id {bug_id}")
        self._enabled[bug_id] = True

    def disable(self, bug_id: str) -> None:
        """Disable a bug (equivalent to applying the fix)."""
        if bug_id not in self._descriptors:
            raise KeyError(f"unknown bug id {bug_id}")
        self._enabled[bug_id] = False

    def disable_all(self) -> None:
        """Disable every bug (a fully patched firmware)."""
        for bug_id in self._enabled:
            self._enabled[bug_id] = False

    def is_enabled(self, bug_id: str) -> bool:
        """True when ``bug_id`` is present and active."""
        return self._enabled.get(bug_id, False)

    def descriptor(self, bug_id: str) -> BugDescriptor:
        """Return the descriptor for ``bug_id``."""
        return self._descriptors[bug_id]

    @property
    def descriptors(self) -> List[BugDescriptor]:
        """All registered bugs in a stable order."""
        return [self._descriptors[bug_id] for bug_id in sorted(self._descriptors)]

    @property
    def enabled_descriptors(self) -> List[BugDescriptor]:
        """All currently enabled bugs in a stable order."""
        return [d for d in self.descriptors if self._enabled[d.bug_id]]

    # ------------------------------------------------------------------
    # Matching and recording
    # ------------------------------------------------------------------
    def match(
        self,
        sensor_type: SensorType,
        mode_label: str,
        altitude: float,
        failed_types: FrozenSet[SensorType],
        was_active_instance: bool,
        time: float,
        seconds_into_mode: float = 0.0,
    ) -> List[BugDescriptor]:
        """Return the enabled bugs whose trigger matches this failure.

        Matches are recorded as trigger events as a side effect.
        """
        matches: List[BugDescriptor] = []
        for descriptor in self.enabled_descriptors:
            if descriptor.trigger.matches(
                sensor_type,
                mode_label,
                altitude,
                failed_types,
                was_active_instance,
                seconds_into_mode,
            ):
                matches.append(descriptor)
                self._events.append(
                    BugTriggerEvent(
                        bug_id=descriptor.bug_id,
                        time=time,
                        mode_label=mode_label,
                        sensor_type=sensor_type,
                        altitude=altitude,
                    )
                )
        return matches

    @property
    def trigger_events(self) -> List[BugTriggerEvent]:
        """Every bug-trigger event recorded during the run."""
        return list(self._events)

    @property
    def triggered_bug_ids(self) -> List[str]:
        """Ids of bugs that engaged at least once, in first-trigger order."""
        seen: List[str] = []
        for event in self._events:
            if event.bug_id not in seen:
                seen.append(event.bug_id)
        return seen


# ----------------------------------------------------------------------
# The bug catalogue
# ----------------------------------------------------------------------
def _labels(*labels: str) -> FrozenSet[str]:
    return frozenset(labels)


ARDUPILOT_LATENT_BUGS: Tuple[BugDescriptor, ...] = (
    BugDescriptor(
        bug_id="APM-16020",
        firmware="ardupilot",
        symptom=BugSymptom.FLY_AWAY,
        sensor_type=SensorType.GPS,
        failure_moment="Takeoff -> Autopilot",
        summary=(
            "A GPS failure as the vehicle hands over from takeoff to autonomous "
            "flight leaves the navigation controller chasing a frozen position "
            "estimate; the vehicle accelerates away from the mission track."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.GPS,
            mode_labels=_labels(OperatingModeLabel.TAKEOFF, "waypoint-1"),
            prefix_match=False,
            min_altitude=5.0,
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(freeze_horizontal=True),
    ),
    BugDescriptor(
        bug_id="APM-16021",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.ACCELEROMETER,
        failure_moment="Takeoff -> Waypoint 1",
        summary=(
            "An accelerometer failure late in the takeoff climb blinds the "
            "vertical-velocity estimate; the vehicle overshoots the target "
            "altitude, the firmware overcorrects into a landing with a stale, "
            "too-high altitude model, and the vehicle hits the ground hard "
            "(Figure 9 of the paper)."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.ACCELEROMETER,
            mode_labels=_labels(OperatingModeLabel.TAKEOFF),
            min_altitude=3.0,
        ),
        effect=EffectScript(
            vertical_velocity_blind=True,
            freeze_altitude=True,
            force_mode=FlightMode.LAND,
            force_mode_delay_s=5.0,
            altitude_offset=15.0,
        ),
    ),
    BugDescriptor(
        bug_id="APM-16027",
        firmware="ardupilot",
        symptom=BugSymptom.FLY_AWAY,
        sensor_type=SensorType.BAROMETER,
        failure_moment="Pre-Flight -> Takeoff",
        summary=(
            "A barometer failure at the start of the takeoff leaves the altitude "
            "reference stuck near zero; the climb controller never observes the "
            "target altitude being reached and the vehicle climbs away."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.BAROMETER,
            mode_labels=_labels(OperatingModeLabel.PREFLIGHT, OperatingModeLabel.TAKEOFF),
            max_altitude=3.0,
        ),
        effect=EffectScript(freeze_altitude=True),
    ),
    BugDescriptor(
        bug_id="APM-16967",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.COMPASS,
        failure_moment="Waypoint 1 -> Waypoint 2",
        summary=(
            "A compass failure between waypoints leaves the firmware navigating "
            "on an old heading while it turns; the land fail-safe engages, the "
            "state estimate is reset near the end of the landing and the vehicle "
            "crashes (Figure 10 of the paper)."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.COMPASS,
            mode_labels=_labels("waypoint-"),
            prefix_match=True,
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(
            freeze_heading=True,
            force_mode=FlightMode.LAND,
            force_mode_delay_s=6.0,
            throttle_cut_below_altitude=4.0,
        ),
        developer_confirmed=True,
        found_by_stratified_bfi=True,
    ),
    BugDescriptor(
        bug_id="APM-16682",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.ACCELEROMETER,
        failure_moment="Return To Launch -> Land",
        summary=(
            "An IMU failure in the final metres of a landing triggers the GPS "
            "fail-safe; the GPS altitude reference is too coarse at low altitude "
            "and the firmware descends fast into the ground (Figure 1 of the "
            "paper)."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.ACCELEROMETER,
            mode_labels=_labels(OperatingModeLabel.LAND, OperatingModeLabel.RTL),
            max_altitude=9.0,
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(
            force_mode=FlightMode.LAND,
            altitude_offset=20.0,
        ),
        developer_confirmed=True,
    ),
    BugDescriptor(
        bug_id="APM-16953",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.GYROSCOPE,
        failure_moment="Return to Launch -> Land",
        summary=(
            "A gyroscope failure during the return-to-launch descent makes the "
            "attitude estimate unusable; the EKF fail-safe cuts the motors while "
            "the vehicle is still metres above the ground."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.GYROSCOPE,
            mode_labels=_labels(OperatingModeLabel.RTL, OperatingModeLabel.LAND),
            max_altitude=12.0,
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(throttle_cut_below_altitude=8.0),
    ),
)
"""The six previously-unknown ArduPilot bugs of Table II (APM-16021 /
APM-16967 are also the Figure 9 / Figure 10 case studies)."""


PX4_LATENT_BUGS: Tuple[BugDescriptor, ...] = (
    BugDescriptor(
        bug_id="PX4-17046",
        firmware="px4",
        symptom=BugSymptom.FLY_AWAY,
        sensor_type=SensorType.GYROSCOPE,
        failure_moment="Waypoint 3 -> Return To Launch",
        summary=(
            "A gyroscope failure around the hand-over from the last waypoint to "
            "return-to-launch corrupts the heading used for the return leg; the "
            "vehicle flies away from home instead of toward it."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.GYROSCOPE,
            mode_labels=_labels("waypoint-3", "waypoint-4", OperatingModeLabel.RTL),
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(freeze_heading=True, freeze_horizontal=True),
        found_by_stratified_bfi=True,
    ),
    BugDescriptor(
        bug_id="PX4-17057",
        firmware="px4",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.GYROSCOPE,
        failure_moment="Pre-Flight -> Takeoff",
        summary=(
            "A gyroscope failure at the moment of lift-off leaves the rate "
            "controller without feedback; the vehicle tips over and impacts the "
            "ground immediately after leaving it."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.GYROSCOPE,
            mode_labels=_labels(OperatingModeLabel.PREFLIGHT, OperatingModeLabel.TAKEOFF),
            max_altitude=5.0,
        ),
        effect=EffectScript(throttle_cut_once_airborne=True),
        found_by_stratified_bfi=True,
    ),
    BugDescriptor(
        bug_id="PX4-17192",
        firmware="px4",
        symptom=BugSymptom.TAKEOFF_FAILURE,
        sensor_type=SensorType.COMPASS,
        failure_moment="Pre-Flight -> Takeoff",
        summary=(
            "A compass failure before takeoff wedges the heading-alignment check; "
            "the vehicle arms but never produces climb authority."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.COMPASS,
            mode_labels=_labels(OperatingModeLabel.PREFLIGHT, OperatingModeLabel.TAKEOFF),
            max_altitude=1.0,
        ),
        effect=EffectScript(block_takeoff=True),
    ),
    BugDescriptor(
        bug_id="PX4-17181",
        firmware="px4",
        symptom=BugSymptom.TAKEOFF_FAILURE,
        sensor_type=SensorType.BAROMETER,
        failure_moment="Pre-Flight -> Takeoff",
        summary=(
            "A barometer failure before takeoff invalidates the altitude "
            "reference; the takeoff aborts a metre and a half off the ground and "
            "the mission never proceeds."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.BAROMETER,
            mode_labels=_labels(OperatingModeLabel.PREFLIGHT, OperatingModeLabel.TAKEOFF),
            max_altitude=2.0,
        ),
        effect=EffectScript(abort_takeoff_at_altitude=1.5),
    ),
)
"""The four previously-unknown PX4 bugs of Table II."""


KNOWN_BUGS: Tuple[BugDescriptor, ...] = (
    BugDescriptor(
        bug_id="APM-4455",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.GPS,
        failure_moment="Land",
        summary=(
            "Previously reported: a GPS failure during the landing descent makes "
            "the position fail-safe cut the motors well above the ground."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.GPS,
            mode_labels=_labels(OperatingModeLabel.LAND, OperatingModeLabel.RTL),
            max_altitude=15.0,
            max_seconds_into_mode=6.0,
        ),
        effect=EffectScript(throttle_cut_below_altitude=6.0),
        known=True,
    ),
    BugDescriptor(
        bug_id="APM-4679",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.ACCELEROMETER,
        failure_moment="Takeoff",
        summary=(
            "Previously reported: an accelerometer failure during the takeoff "
            "climb leads to a landing fail-safe executed against a stale, "
            "too-high altitude model."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.ACCELEROMETER,
            mode_labels=_labels(OperatingModeLabel.TAKEOFF),
            min_altitude=3.0,
        ),
        effect=EffectScript(
            force_mode=FlightMode.LAND,
            altitude_offset=15.0,
        ),
        known=True,
        found_by_stratified_bfi=True,
    ),
    BugDescriptor(
        bug_id="APM-5428",
        firmware="ardupilot",
        symptom=BugSymptom.FLY_AWAY,
        sensor_type=SensorType.BAROMETER,
        failure_moment="Return To Launch",
        summary=(
            "Previously reported: a barometer failure during return-to-launch "
            "freezes the altitude reference and the vehicle climbs away instead "
            "of descending."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.BAROMETER,
            mode_labels=_labels(OperatingModeLabel.RTL),
            max_seconds_into_mode=4.0,
        ),
        effect=EffectScript(freeze_altitude=True),
        known=True,
    ),
    BugDescriptor(
        bug_id="APM-9349",
        firmware="ardupilot",
        symptom=BugSymptom.CRASH,
        sensor_type=SensorType.COMPASS,
        failure_moment="Waypoint navigation",
        summary=(
            "Previously reported: a compass failure while flying between "
            "waypoints corrupts the heading estimate; the subsequent emergency "
            "landing resets the state estimate and the vehicle falls the last "
            "metres."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.COMPASS,
            mode_labels=_labels("waypoint-"),
            prefix_match=True,
            max_seconds_into_mode=3.0,
        ),
        effect=EffectScript(
            freeze_heading=True,
            force_mode=FlightMode.LAND,
            force_mode_delay_s=5.0,
            throttle_cut_below_altitude=4.0,
        ),
        known=True,
        found_by_stratified_bfi=True,
    ),
    BugDescriptor(
        bug_id="PX4-13291",
        firmware="px4",
        symptom=BugSymptom.FLY_AWAY,
        sensor_type=SensorType.BATTERY,
        failure_moment="Auto (joint GPS + battery failure)",
        summary=(
            "Previously reported (the paper's multi-failure case): when the "
            "battery fail-safe fires while the local position estimate is "
            "already invalid because of a GPS failure, the return-to-launch "
            "fail-safe navigates on garbage and the vehicle flies away."
        ),
        trigger=BugTrigger(
            sensor_type=SensorType.BATTERY,
            mode_labels=_labels(
                "waypoint-",
                OperatingModeLabel.TAKEOFF,
                OperatingModeLabel.RTL,
                OperatingModeLabel.LAND,
            ),
            prefix_match=True,
            requires_failed_types=frozenset({SensorType.GPS}),
        ),
        effect=EffectScript(
            freeze_horizontal=True,
            force_mode=FlightMode.RTL,
        ),
        known=True,
    ),
)
"""The five previously-known, re-insertable bugs of Table V."""


def ardupilot_bug_registry(include_known: bool = True) -> BugRegistry:
    """The bug registry shipped with the ArduPilot flavour.

    Latent bugs are enabled; known bugs are registered but disabled until
    re-inserted.  ``include_known=False`` omits the known bugs entirely.
    """
    descriptors: List[BugDescriptor] = list(ARDUPILOT_LATENT_BUGS)
    if include_known:
        descriptors.extend(d for d in KNOWN_BUGS if d.firmware == "ardupilot")
    return BugRegistry(descriptors)


def px4_bug_registry(include_known: bool = True) -> BugRegistry:
    """The bug registry shipped with the PX4 flavour."""
    descriptors: List[BugDescriptor] = list(PX4_LATENT_BUGS)
    if include_known:
        descriptors.extend(d for d in KNOWN_BUGS if d.firmware == "px4")
    return BugRegistry(descriptors)


def all_table2_bugs() -> List[BugDescriptor]:
    """The ten previously-unknown bugs of Table II."""
    return list(ARDUPILOT_LATENT_BUGS) + list(PX4_LATENT_BUGS)


def all_table5_bugs() -> List[BugDescriptor]:
    """The five previously-known bugs of Table V."""
    return list(KNOWN_BUGS)
