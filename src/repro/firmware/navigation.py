"""Cascaded navigation controllers.

The structure mirrors a real multicopter position controller:

    position error -> velocity command -> acceleration command -> lean
    angles, and altitude error -> climb-rate command -> throttle.

Gains live in :class:`~repro.firmware.params.FirmwareParameters`; limits
come from the airframe.  The controllers consume the *estimated* state,
never the simulator's ground truth -- which is exactly why corrupted
estimates (frozen positions, wrong altitude references) produce the
fly-aways and crashes the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.firmware.estimator import StateEstimate
from repro.firmware.params import FirmwareParameters
from repro.sim.physics import GRAVITY
from repro.sim.state import wrap_angle
from repro.sim.vehicle import AirframeParameters


@dataclass(frozen=True)
class NavigationSetpoint:
    """What the current flight mode wants the vehicle to do."""

    target_north: Optional[float] = None
    target_east: Optional[float] = None
    target_altitude: Optional[float] = None
    #: Direct climb-rate command; overrides the altitude target when set
    #: (used by LAND and by takeoff's constant-rate climb).
    climb_rate: Optional[float] = None
    target_yaw: Optional[float] = None
    #: Horizontal speed limit for this leg (defaults to the parameter).
    speed_limit: Optional[float] = None


@dataclass(frozen=True)
class AttitudeCommand:
    """Output of the navigation cascade, consumed by the mixer."""

    roll: float = 0.0
    pitch: float = 0.0
    yaw_rate: float = 0.0
    throttle: float = 0.0


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


class PositionController:
    """Horizontal position -> velocity -> acceleration -> lean angles."""

    def __init__(self, params: FirmwareParameters, airframe: AirframeParameters) -> None:
        self._params = params
        self._airframe = airframe

    def update(self, estimate: StateEstimate, setpoint: NavigationSetpoint) -> Tuple[float, float]:
        """Return the commanded ``(roll, pitch)`` lean angles."""
        params = self._params
        # `is not None`, not truthiness: an explicit limit of 0.0 means
        # "hold position", not "fly at the airframe maximum".
        speed_limit = (
            setpoint.speed_limit
            if setpoint.speed_limit is not None
            else self._airframe.max_horizontal_speed_ms
        )

        if setpoint.target_north is None or setpoint.target_east is None:
            vel_cmd_north, vel_cmd_east = 0.0, 0.0
        else:
            error_north = setpoint.target_north - estimate.north
            error_east = setpoint.target_east - estimate.east
            vel_cmd_north = params.position_p * error_north
            vel_cmd_east = params.position_p * error_east
            speed = math.hypot(vel_cmd_north, vel_cmd_east)
            if speed > speed_limit and speed > 0.0:
                scale = speed_limit / speed
                vel_cmd_north *= scale
                vel_cmd_east *= scale

        accel_north = params.velocity_p * (vel_cmd_north - estimate.vel_north)
        accel_east = params.velocity_p * (vel_cmd_east - estimate.vel_east)
        accel_limit = params.max_horizontal_accel_ms2
        accel_north = _clamp(accel_north, -accel_limit, accel_limit)
        accel_east = _clamp(accel_east, -accel_limit, accel_limit)

        # Decompose the world-frame acceleration into body-frame lean
        # angles using the *estimated* heading.
        yaw = estimate.yaw
        accel_forward = accel_north * math.cos(yaw) + accel_east * math.sin(yaw)
        accel_right = -accel_north * math.sin(yaw) + accel_east * math.cos(yaw)
        max_tilt = self._airframe.max_tilt_rad
        pitch = _clamp(accel_forward / GRAVITY, -max_tilt, max_tilt)
        roll = _clamp(accel_right / GRAVITY, -max_tilt, max_tilt)
        return roll, pitch


class AltitudeController:
    """Altitude -> climb rate -> throttle."""

    def __init__(self, params: FirmwareParameters, airframe: AirframeParameters) -> None:
        self._params = params
        self._airframe = airframe

    def climb_rate_command(
        self, estimate: StateEstimate, setpoint: NavigationSetpoint
    ) -> float:
        """The climb rate (m/s) the vertical loop should track."""
        params = self._params
        airframe = self._airframe
        if setpoint.climb_rate is not None:
            return _clamp(
                setpoint.climb_rate,
                -airframe.max_descent_rate_ms,
                airframe.max_climb_rate_ms,
            )
        if setpoint.target_altitude is None:
            return 0.0
        error = setpoint.target_altitude - estimate.altitude
        return _clamp(
            params.altitude_p * error,
            -airframe.max_descent_rate_ms,
            airframe.max_climb_rate_ms,
        )

    def update(self, estimate: StateEstimate, setpoint: NavigationSetpoint) -> float:
        """Return the commanded throttle fraction (0..1)."""
        climb_cmd = self.climb_rate_command(estimate, setpoint)
        throttle = self._airframe.hover_throttle + self._params.climb_rate_p * (
            climb_cmd - estimate.climb_rate
        )
        return _clamp(throttle, 0.0, 1.0)


class YawController:
    """Heading hold / heading tracking."""

    def __init__(self, params: FirmwareParameters, airframe: AirframeParameters) -> None:
        self._params = params
        self._airframe = airframe

    def update(self, estimate: StateEstimate, setpoint: NavigationSetpoint) -> float:
        """Return the commanded yaw rate (rad/s)."""
        if setpoint.target_yaw is None:
            return 0.0
        error = wrap_angle(setpoint.target_yaw - estimate.yaw)
        return _clamp(
            self._params.yaw_p * error,
            -self._airframe.max_yaw_rate_rads,
            self._airframe.max_yaw_rate_rads,
        )


class NavigationStack:
    """Bundles the three controllers behind one update call."""

    def __init__(self, params: FirmwareParameters, airframe: AirframeParameters) -> None:
        self.position = PositionController(params, airframe)
        self.altitude = AltitudeController(params, airframe)
        self.yaw = YawController(params, airframe)

    def update(self, estimate: StateEstimate, setpoint: NavigationSetpoint) -> AttitudeCommand:
        """Run the full cascade for one control period."""
        roll, pitch = self.position.update(estimate, setpoint)
        throttle = self.altitude.update(estimate, setpoint)
        yaw_rate = self.yaw.update(estimate, setpoint)
        return AttitudeCommand(roll=roll, pitch=pitch, yaw_rate=yaw_rate, throttle=throttle)
