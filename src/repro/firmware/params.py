"""Firmware parameter sets.

Real autopilots are configured through hundreds of parameters; the
subset modelled here is what the reproduction's behaviour actually
depends on: speed limits, landing speeds, fail-safe enables, arming
checks, and the RTL return altitude.  Defaults follow ArduCopter's
stock values where a direct analogue exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FirmwareParameters:
    """Tunable firmware parameters shared by both flavours."""

    # Navigation speeds.
    waypoint_speed_ms: float = 8.0
    takeoff_climb_rate_ms: float = 2.5
    #: Descent rate used while the estimated altitude is above
    #: ``land_final_altitude_m``.
    land_speed_high_ms: float = 3.0
    #: Final-approach descent rate (ArduCopter LAND_SPEED is 0.5 m/s).
    land_speed_final_ms: float = 0.6
    #: Altitude below which the final-approach descent rate applies.
    land_final_altitude_m: float = 8.0
    #: Return-to-launch altitude (ArduCopter RTL_ALT is 15 m).
    rtl_altitude_m: float = 15.0

    # Acceptance radii.
    waypoint_radius_m: float = 2.0
    takeoff_altitude_tolerance_m: float = 0.75

    # Controller gains.
    position_p: float = 0.7
    velocity_p: float = 1.2
    altitude_p: float = 1.0
    climb_rate_p: float = 0.12
    yaw_p: float = 1.8
    max_horizontal_accel_ms2: float = 4.0

    # Fail-safe configuration.
    gps_failsafe_enabled: bool = True
    battery_failsafe_enabled: bool = True
    fence_enabled: bool = True
    #: Battery fraction below which the battery fail-safe engages.
    battery_failsafe_level: float = 0.2
    #: Seconds of missing GPS before the position estimate is declared invalid.
    gps_timeout_s: float = 2.0

    # Arming checks.
    require_gps_for_arming: bool = True
    require_compass_for_arming: bool = True
    require_baro_for_arming: bool = True

    # Telemetry.
    heartbeat_interval_s: float = 0.2
    telemetry_interval_s: float = 0.1

    def with_overrides(self, **changes: object) -> "FirmwareParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


ARDUPILOT_DEFAULT_PARAMETERS = FirmwareParameters()
"""ArduCopter-flavoured defaults."""

PX4_DEFAULT_PARAMETERS = FirmwareParameters(
    waypoint_speed_ms=9.0,
    takeoff_climb_rate_ms=2.0,
    land_speed_high_ms=2.5,
    land_speed_final_ms=0.7,
    rtl_altitude_m=20.0,
    waypoint_radius_m=2.5,
)
"""PX4-flavoured defaults (slightly different speeds and RTL altitude)."""
