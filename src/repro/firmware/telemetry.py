"""Firmware-side MAVLink handling: command dispatch and telemetry.

One handler instance lives inside each firmware instance.  Every control
period it (1) drains the vehicle side of the link and dispatches the
messages to the firmware (arming, mode changes, takeoff, mission upload
handshake, mission start) and (2) streams telemetry back at the
configured rates (heartbeat, position, mission progress, status text).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.firmware.params import FirmwareParameters
from repro.mavlink.link import MavLink
from repro.mavlink.messages import (
    CommandAck,
    CommandLong,
    GlobalPosition,
    Heartbeat,
    MavCommand,
    MavResult,
    MissionCount,
    MissionCurrent,
    MissionItem,
    MissionItemReached,
    SetMode,
    StatusText,
)
from repro.mavlink.mission import MissionReceiveState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.firmware.base import ControlFirmware


class FirmwareMavlinkHandler:
    """Processes GCS traffic and emits telemetry for one firmware."""

    def __init__(
        self,
        firmware: "ControlFirmware",
        link: MavLink,
        params: FirmwareParameters,
    ) -> None:
        self._firmware = firmware
        self._link = link
        self._params = params
        self._mission_receive = MissionReceiveState()
        self._last_heartbeat = float("-inf")
        self._last_telemetry = float("-inf")
        self._announced_reached: List[int] = []
        self._last_mission_current: Optional[int] = None

    # ------------------------------------------------------------------
    # Incoming traffic
    # ------------------------------------------------------------------
    def process_incoming(self, time: float) -> None:
        """Drain and dispatch every message addressed to the vehicle."""
        for message in self._link.vehicle_receive():
            if isinstance(message, CommandLong):
                self._handle_command(message, time)
            elif isinstance(message, SetMode):
                self._handle_set_mode(message, time)
            elif isinstance(message, MissionCount):
                reply = self._mission_receive.handle_count(message)
                if reply is not None:
                    self._link.vehicle_send(reply)
            elif isinstance(message, MissionItem):
                reply = self._mission_receive.handle_item(message)
                if reply is not None:
                    self._link.vehicle_send(reply)
                plan = self._mission_receive.take_plan()
                if plan is not None:
                    self._firmware.load_mission(plan)

    def _handle_command(self, message: CommandLong, time: float) -> None:
        firmware = self._firmware
        result = MavResult.ACCEPTED
        if message.command == MavCommand.COMPONENT_ARM_DISARM:
            if message.param1 >= 0.5:
                decision = firmware.command_arm(time)
            else:
                decision = firmware.command_disarm()
            if not decision.allowed:
                result = MavResult.TEMPORARILY_REJECTED
                self.send_status_text("warning", decision.reason_text or "arming refused")
        elif message.command == MavCommand.NAV_TAKEOFF:
            accepted = firmware.command_takeoff(message.param7, time)
            result = MavResult.ACCEPTED if accepted else MavResult.TEMPORARILY_REJECTED
        elif message.command == MavCommand.MISSION_START:
            accepted = firmware.start_mission(time)
            result = MavResult.ACCEPTED if accepted else MavResult.TEMPORARILY_REJECTED
        elif message.command == MavCommand.NAV_RETURN_TO_LAUNCH:
            firmware.command_rtl(time)
        elif message.command == MavCommand.NAV_LAND:
            firmware.command_land(time)
        else:
            result = MavResult.UNSUPPORTED
        self._link.vehicle_send(CommandAck(command=message.command, result=result))

    def _handle_set_mode(self, message: SetMode, time: float) -> None:
        accepted = self._firmware.set_mode_by_name(message.mode, time)
        if not accepted:
            self.send_status_text("warning", f"mode change to {message.mode} rejected")

    # ------------------------------------------------------------------
    # Outgoing telemetry
    # ------------------------------------------------------------------
    def send_telemetry(self, time: float) -> None:
        """Emit heartbeat / position / mission progress at their rates."""
        if time - self._last_heartbeat >= self._params.heartbeat_interval_s:
            self._last_heartbeat = time
            self._link.vehicle_send(
                Heartbeat(
                    mode=self._firmware.mode_display_name,
                    armed=self._firmware.armed,
                    system_status="active" if self._firmware.armed else "standby",
                )
            )
        if time - self._last_telemetry >= self._params.telemetry_interval_s:
            self._last_telemetry = time
            self._send_position()
            self._send_mission_progress()

    def _send_position(self) -> None:
        estimate = self._firmware.estimate
        home = self._firmware.home
        location = home.offset(estimate.north, estimate.east)
        self._link.vehicle_send(
            GlobalPosition(
                latitude=location.latitude_deg,
                longitude=location.longitude_deg,
                altitude=home.altitude_msl_m + estimate.altitude,
                relative_altitude=estimate.altitude,
                vx=estimate.vel_north,
                vy=estimate.vel_east,
                vz=estimate.climb_rate,
                heading=estimate.yaw,
            )
        )

    def _send_mission_progress(self) -> None:
        current = self._firmware.mission_current_seq
        if current is not None and current != self._last_mission_current:
            self._last_mission_current = current
            self._link.vehicle_send(MissionCurrent(seq=current))
        for seq in self._firmware.mission_reached_items:
            if seq not in self._announced_reached:
                self._announced_reached.append(seq)
                self._link.vehicle_send(MissionItemReached(seq=seq))

    def send_status_text(self, severity: str, text: str) -> None:
        """Send a free-form status text message to the GCS."""
        self._link.vehicle_send(StatusText(severity=severity, text=text))
