"""``python -m repro.engine``: run a campaign grid from the command line.

Builds the (firmware x workload x strategy x budget) matrix from the
flags, shards it across worker processes, streams one progress line per
finished campaign, and prints (or writes) a JSON summary.

Examples
--------
Run the Table III strategy grid on both firmwares with 4 workers::

    python -m repro.engine --firmware ardupilot px4 \
        --strategy avis stratified-bfi bfi random \
        --workload waypoint --budget 60 --workers 4 --json table3.json

Quick smoke campaign::

    python -m repro.engine --strategy random --budget 6 --workers 2

Heterogeneous convoy (ArduPilot lead, PX4 wing) under coordination
faults, with the separation-aware SABRE dequeue::

    python -m repro.engine --workload convoy \
        --vehicle firmware=ardupilot --vehicle firmware=px4,airframe=solo \
        --traffic-faults --separation-aware --strategy avis --budget 20
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    StratifiedBFI,
)
from repro.engine.grid import (
    CampaignGrid,
    GridCell,
    GridOutcome,
    filter_completed,
    load_completed_cells,
)
from repro.obs.metrics import merge_snapshots
from repro.obs.runtime import Observability, observed
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.sim.vehicle import IRIS_QUADCOPTER, SOLO_QUADCOPTER
from repro.workloads.builtin import (
    AutoWorkload,
    PositionHoldBoxWorkload,
    WaypointFenceWorkload,
)
from repro.workloads.fleet import (
    ConvoyFollowWorkload,
    CrossingPathsWorkload,
    MultiPadTakeoffLandWorkload,
)

FIRMWARES = {"ardupilot": ArduPilotFirmware, "px4": Px4Firmware}

AIRFRAMES = {"iris": IRIS_QUADCOPTER, "solo": SOLO_QUADCOPTER}

#: Workloads that need a fleet, mapped to the minimum fleet size each
#: implies (taken from the workload classes so the CLI cannot drift).
FLEET_WORKLOADS = {
    "convoy": ConvoyFollowWorkload.fleet_size,
    "crossing": CrossingPathsWorkload.fleet_size,
    # Multi-pad scales to whatever --fleet-size asks for; two vehicles is
    # the smallest fleet its constructor accepts.
    "multi-pad": 2,
}

#: Fleet workloads whose choreography flies a fixed number of vehicles;
#: any other --fleet-size would provision vehicles that never fly.
FIXED_FLEET_WORKLOADS = {
    "convoy": ConvoyFollowWorkload.fleet_size,
    "crossing": CrossingPathsWorkload.fleet_size,
}

STRATEGIES: Dict[str, Callable[[], object]] = {
    "avis": AvisStrategy,
    "stratified-bfi": StratifiedBFI,
    "bfi": BayesianFaultInjection,
    "random": RandomInjection,
    "depth-first": DepthFirstSearch,
    "breadth-first": BreadthFirstSearch,
}

#: Strategies that draw from ``session.injectable_failures`` and can
#: therefore explore the coordination fault space.  The BFI family
#: scores candidates through a sensor-typed model and the exhaustive
#: enumerators eagerly materialise every failure subset, so a
#: ``--traffic-faults`` grid restricted to these strategies is the
#: honest option: a cell tagged ``+traffic`` really injects them.
TRAFFIC_STRATEGIES = frozenset({"avis", "random"})

#: Strategies that can sweep intermittent (recovering) fault windows
#: next to the latched faults; ``--burst-duration`` is rejected for any
#: other strategy so a cell tagged ``+burst`` really explores bursts.
BURST_STRATEGIES = frozenset({"avis", "stratified-bfi", "bfi"})


def _workload_factory(name: str, altitude: float, box_side: float, fleet_size: int):
    if name == "auto":
        return lambda: AutoWorkload(altitude=altitude)
    if name == "waypoint":
        return lambda: WaypointFenceWorkload(altitude=altitude, box_side=box_side)
    if name == "poshold":
        return lambda: PositionHoldBoxWorkload(altitude=altitude, box_side=box_side)
    if name == "convoy":
        return lambda: ConvoyFollowWorkload()
    if name == "crossing":
        return lambda: CrossingPathsWorkload()
    if name == "multi-pad":
        return lambda: MultiPadTakeoffLandWorkload(fleet_size=max(fleet_size, 2))
    raise ValueError(f"unknown workload '{name}'")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Shard a (firmware x workload x strategy x budget) "
        "campaign matrix across worker processes.",
    )
    parser.add_argument(
        "--firmware", nargs="+", choices=sorted(FIRMWARES), default=["ardupilot"],
        help="firmware flavours to check",
    )
    parser.add_argument(
        "--workload", nargs="+",
        choices=["auto", "waypoint", "poshold", "convoy", "crossing", "multi-pad"],
        default=["waypoint"],
        help="workloads to fly (convoy/crossing/multi-pad need --fleet-size >= 2)",
    )
    parser.add_argument(
        "--fleet-size", type=int, default=1,
        help="vehicles per fleet-workload simulation (convoy/crossing/"
        "multi-pad; classic workloads in the same grid always fly solo)",
    )
    parser.add_argument(
        "--vehicle", action="append", default=None, metavar="SPEC",
        help="per-vehicle spec for fleet workloads, one flag per fleet "
        "member in vehicle order: comma-separated key=value pairs with "
        f"keys 'firmware' ({'/'.join(sorted(FIRMWARES))}) and 'airframe' "
        f"({'/'.join(sorted(AIRFRAMES))}), e.g. "
        "--vehicle firmware=ardupilot --vehicle firmware=px4,airframe=solo. "
        "Defines the fleet size; overrides --firmware for fleet workloads.",
    )
    parser.add_argument(
        "--traffic-faults", action="store_true",
        help="open the inter-vehicle traffic channel to injection: adds "
        "the coordination fault family (beacon dropout/freeze/delay, one "
        "handle per vehicle) to the fault space of fleet campaigns. "
        f"Only the strategies that draw from the extended space "
        f"({'/'.join(sorted(TRAFFIC_STRATEGIES))}) may be combined with it.",
    )
    parser.add_argument(
        "--separation-aware", action="store_true",
        help="SABRE: dequeue transition windows tightest-profiled-fleet-"
        "geometry first instead of FIFO (fleet campaigns with the 'avis' "
        "strategy)",
    )
    parser.add_argument(
        "--burst-duration", nargs="+", type=float, default=None,
        metavar="SECONDS",
        help="explore intermittent faults: besides the latched faults, "
        "sweep recovering variants whose fault window closes after the "
        "given duration(s).  The default fault model (latched, never "
        "recovering) is unchanged.  Applies to the strategies that "
        f"enumerate burst windows ({'/'.join(sorted(BURST_STRATEGIES))}).",
    )
    parser.add_argument(
        "--stepper", choices=["reference", "soa", "adaptive"],
        default="reference",
        help="simulation stepping mode for every cell: 'reference' is "
        "the classic per-vehicle lock-step loop, 'soa' the batched "
        "structure-of-arrays physics core (bit-identical, shares cache "
        "entries with 'reference'), 'adaptive' additionally fuses "
        "micro-steps while no fault window, checkpoint, mode transition "
        "or proximity hazard is near (same verdicts, own cache keys)",
    )
    parser.add_argument(
        "--strategy", nargs="+", choices=sorted(STRATEGIES),
        default=["avis", "stratified-bfi", "bfi", "random"],
        help="search strategies to compare",
    )
    parser.add_argument(
        "--budget", nargs="+", type=float, default=[30.0],
        help="budget(s) in simulation-cost units; one grid axis per value",
    )
    parser.add_argument(
        "--per-dequeue", type=int, default=None, metavar="N",
        help="SABRE: candidate scenarios expanded (and simulated "
        "concurrently) per transition dequeue before the entry is "
        "re-queued; 0 disables the bound (exact Algorithm 1). "
        "Default: the AvisStrategy default (6). "
        "Only the 'avis' strategy consumes this.",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count, capped at 4)",
    )
    parser.add_argument("--profiling-runs", type=int, default=2)
    parser.add_argument("--altitude", type=float, default=15.0)
    parser.add_argument("--box-side", type=float, default=15.0)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the JSON summary here instead of stdout",
    )
    parser.add_argument(
        "--stream", metavar="PATH", default=None,
        help="append one JSON line per finished campaign to this file "
        "(a killed grid can later resume from it)",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="skip campaigns already recorded in this stream file and "
        "keep appending new ones to it",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-campaign progress lines"
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record structured spans across every campaign and write a "
        "Chrome-trace JSON file here (open in chrome://tracing or "
        "https://ui.perfetto.dev); a path ending in .jsonl writes the "
        "event stream form instead.  Observing never changes campaign "
        "outcomes or cell fingerprints.",
    )
    observability.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write the merged metrics snapshot (engine rounds, cache "
        "traffic, worker utilisation, SABRE prune reasons, per-run phase "
        "timings) of every campaign here as JSON",
    )
    observability.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="write per-cell engine/cache scheduling stats "
        "(CampaignEngine.last_stats and ResultCache.stats) plus grid "
        "totals here as JSON",
    )
    return parser


def _burst_durations(args: argparse.Namespace) -> Tuple[float, ...]:
    """The requested burst windows (empty when the flag is absent)."""
    return tuple(args.burst_duration) if args.burst_duration else ()


def _strategy_factory(strategy_name: str, args: argparse.Namespace):
    """The per-cell strategy factory, honouring the SABRE/burst knobs."""
    bursts = _burst_durations(args)
    if strategy_name == "avis" and (
        args.per_dequeue is not None
        or args.traffic_faults
        or args.separation_aware
        or bursts
    ):
        kwargs = dict(
            include_traffic_faults=args.traffic_faults,
            separation_aware=args.separation_aware,
            burst_durations=bursts,
        )
        if args.per_dequeue is not None:
            kwargs["max_scenarios_per_dequeue"] = (
                None if args.per_dequeue == 0 else args.per_dequeue
            )
        return lambda: AvisStrategy(**kwargs)
    if strategy_name == "stratified-bfi" and bursts:
        return lambda: StratifiedBFI(burst_durations=bursts)
    if strategy_name == "bfi" and bursts:
        return lambda: BayesianFaultInjection(burst_durations=bursts)
    return STRATEGIES[strategy_name]


def _strategy_id(strategy_name: str, args: argparse.Namespace) -> str:
    """The cell-id fragment for a strategy; default knobs keep the
    historical ids so existing stream files still resume."""
    bursts = _burst_durations(args)
    burst_fragment = (
        "+burst" + ",".join(f"{duration:g}" for duration in bursts)
        if bursts and strategy_name in BURST_STRATEGIES
        else ""
    )
    if strategy_name != "avis":
        return strategy_name + burst_fragment
    fragment = "avis"
    if args.per_dequeue is not None:
        fragment += f"@pd{args.per_dequeue}"
    if args.separation_aware:
        fragment += "+sep"
    return fragment + burst_fragment


def parse_vehicle_spec(text: str) -> VehicleSpec:
    """Parse one ``--vehicle`` value: ``firmware=px4,airframe=solo``."""
    kwargs = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"--vehicle: expected key=value pairs, got '{item}'"
            )
        key, value = (part.strip() for part in item.split("=", 1))
        if key == "firmware":
            if value not in FIRMWARES:
                raise ValueError(
                    f"--vehicle: unknown firmware '{value}' "
                    f"(choose from {', '.join(sorted(FIRMWARES))})"
                )
            kwargs["firmware_class"] = FIRMWARES[value]
        elif key == "airframe":
            if value not in AIRFRAMES:
                raise ValueError(
                    f"--vehicle: unknown airframe '{value}' "
                    f"(choose from {', '.join(sorted(AIRFRAMES))})"
                )
            kwargs["airframe"] = AIRFRAMES[value]
        else:
            raise ValueError(
                f"--vehicle: unknown key '{key}' (use firmware/airframe)"
            )
    return VehicleSpec(**kwargs)


def _vehicle_fleet(args: argparse.Namespace) -> Optional[Tuple[VehicleSpec, ...]]:
    """The per-vehicle fleet requested via ``--vehicle``, if any."""
    if not args.vehicle:
        return None
    specs = tuple(parse_vehicle_spec(text) for text in args.vehicle)
    if len(specs) < 2:
        raise ValueError("--vehicle needs at least two specs (one per fleet member)")
    return specs


def build_cells(args: argparse.Namespace) -> List[GridCell]:
    vehicles = _vehicle_fleet(args)
    fleet_size = args.fleet_size
    if vehicles is not None:
        if not any(workload in FLEET_WORKLOADS for workload in args.workload):
            raise ValueError(
                "--vehicle applies only to fleet workloads "
                f"({', '.join(sorted(FLEET_WORKLOADS))}); none requested"
            )
        if args.fleet_size not in (1, len(vehicles)):
            raise ValueError(
                f"--fleet-size {args.fleet_size} disagrees with "
                f"{len(vehicles)} --vehicle spec(s)"
            )
        fleet_size = len(vehicles)
    elif args.fleet_size != 1 and not any(
        workload in FLEET_WORKLOADS for workload in args.workload
    ):
        raise ValueError(
            "--fleet-size applies only to fleet workloads "
            f"({', '.join(sorted(FLEET_WORKLOADS))}); none requested"
        )
    if args.traffic_faults and fleet_size < 2 and vehicles is None:
        raise ValueError(
            "--traffic-faults needs a fleet (use --fleet-size or --vehicle)"
        )
    if args.traffic_faults:
        unsupported = sorted(set(args.strategy) - TRAFFIC_STRATEGIES)
        if unsupported:
            raise ValueError(
                "--traffic-faults applies only to strategies that explore "
                f"the coordination fault space "
                f"({', '.join(sorted(TRAFFIC_STRATEGIES))}); "
                f"got: {', '.join(unsupported)}"
            )
    if args.burst_duration:
        from repro.hinj.faults import validate_burst_durations

        try:
            validate_burst_durations(args.burst_duration)
        except ValueError:
            raise ValueError("--burst-duration values must be positive seconds")
        unsupported = sorted(set(args.strategy) - BURST_STRATEGIES)
        if unsupported:
            raise ValueError(
                "--burst-duration applies only to strategies that sweep "
                f"recovery windows ({', '.join(sorted(BURST_STRATEGIES))}); "
                f"got: {', '.join(unsupported)}"
            )
    if args.per_dequeue is not None:
        if args.per_dequeue < 0:
            raise ValueError("--per-dequeue must be >= 0 (0 disables the bound)")
        if "avis" not in args.strategy:
            raise ValueError("--per-dequeue applies only to the 'avis' strategy")
    if args.separation_aware and "avis" not in args.strategy:
        raise ValueError("--separation-aware applies only to the 'avis' strategy")
    cells: List[GridCell] = []
    fleet_cell_ids = set()
    for firmware_name in args.firmware:
        for workload_name in args.workload:
            required_fleet = FLEET_WORKLOADS.get(workload_name, 1)
            if required_fleet > 1 and fleet_size < required_fleet:
                raise ValueError(
                    f"workload '{workload_name}' needs --fleet-size >= {required_fleet}"
                )
            if workload_name in FIXED_FLEET_WORKLOADS and (
                fleet_size != FIXED_FLEET_WORKLOADS[workload_name]
            ):
                # Extra vehicles would be provisioned and integrated every
                # step but never flown -- reject rather than burn budget
                # on a campaign whose cell id would overstate the fleet.
                raise ValueError(
                    f"workload '{workload_name}' flies exactly "
                    f"{FIXED_FLEET_WORKLOADS[workload_name]} vehicles; "
                    f"run it with --fleet-size {FIXED_FLEET_WORKLOADS[workload_name]}"
                )
            # Classic workloads in a mixed grid always fly solo; only the
            # fleet workloads consume --fleet-size / --vehicle.
            is_fleet_cell = required_fleet > 1
            cell_firmware_id = firmware_name
            if is_fleet_cell and vehicles is not None:
                # A --vehicle fleet fully determines the cell's firmware
                # mix; emit it once rather than once per --firmware.
                cell_firmware_id = "+".join(
                    spec.firmware_name for spec in vehicles
                )
                config = RunConfiguration(
                    workload_factory=_workload_factory(
                        workload_name, args.altitude, args.box_side, fleet_size
                    ),
                    vehicles=vehicles,
                    stepper=args.stepper,
                )
            else:
                config = RunConfiguration(
                    firmware_class=FIRMWARES[firmware_name],
                    workload_factory=_workload_factory(
                        workload_name, args.altitude, args.box_side, fleet_size
                    ),
                    fleet_size=fleet_size if is_fleet_cell else 1,
                    stepper=args.stepper,
                )
            workload_id = workload_name
            if is_fleet_cell:
                workload_id = f"{workload_name}@fleet{fleet_size}"
                if args.traffic_faults:
                    workload_id += "+traffic"
            if args.stepper != "reference":
                # Non-default steppers mark the cell id so streams and
                # resumes distinguish them at a glance ('soa' cells still
                # *cache*-share with 'reference' -- they are bit-identical).
                workload_id += f"+{args.stepper}"
            for strategy_name in args.strategy:
                for budget in args.budget:
                    cell_id = (
                        f"{cell_firmware_id}/{workload_id}/"
                        f"{_strategy_id(strategy_name, args)}/{budget:g}"
                    )
                    if is_fleet_cell and vehicles is not None:
                        if cell_id in fleet_cell_ids:
                            continue
                        fleet_cell_ids.add(cell_id)
                    cells.append(
                        GridCell(
                            cell_id=cell_id,
                            config=config,
                            strategy_factory=_strategy_factory(strategy_name, args),
                            budget_units=budget,
                            profiling_runs=args.profiling_runs,
                            traffic_faults=args.traffic_faults and is_fleet_cell,
                        )
                    )
    return cells


def _stats_line(outcome: GridOutcome) -> Optional[str]:
    """The final scheduling-stats summary line (None when unavailable,
    e.g. every cell was resumed from a pre-stats stream file)."""

    def fmt(value: object) -> str:
        return f"{value:g}" if isinstance(value, (int, float)) else "?"

    parts = []
    engine = outcome.engine_totals()
    if engine:
        parts.append(
            "engine: rounds={} proposed={} cache_hits={} executed={}".format(
                *(fmt(engine.get(key)) for key in
                  ("rounds", "proposed", "cache_hits", "executed"))
            )
        )
    cache = outcome.cache_totals()
    if cache:
        parts.append(
            "cache: hits={} misses={} evictions={}".format(
                *(fmt(cache.get(key)) for key in
                  ("hits", "misses", "evictions"))
            )
        )
    return " | ".join(parts) if parts else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Fail fast on every output path: campaigns can run for minutes; an
    # unwritable path must not surface only after the grid has finished.
    for flag, value in (("--json", args.json), ("--stream", args.stream),
                        ("--resume", args.resume), ("--trace", args.trace),
                        ("--metrics-json", args.metrics_json),
                        ("--stats-json", args.stats_json)):
        if not value:
            continue
        directory = os.path.dirname(os.path.abspath(value))
        if not os.path.isdir(directory):
            parser.error(f"{flag}: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"{flag}: directory is not writable: {directory}")
    stream_path = args.stream
    completed = {}
    if args.resume:
        stream_path = stream_path or args.resume
        try:
            completed = load_completed_cells(args.resume)
        except OSError as error:
            parser.error(f"--resume: cannot read {args.resume}: {error}")
    try:
        cells = build_cells(args)
    except ValueError as error:
        parser.error(str(error))
    observing = bool(args.trace or args.metrics_json)
    if observing:
        # Observed cells run under fresh per-cell runtimes and return
        # their metrics/trace with the summary; 'observe' is never part
        # of the cell fingerprint, so --resume semantics are unchanged.
        for cell in cells:
            cell.observe = True
    grid = CampaignGrid(cells, max_workers=args.workers)
    fingerprints = grid.fingerprints()
    completed = filter_completed(cells, completed, fingerprints)
    pending = [cell for cell in cells if cell.cell_id not in completed]
    if not args.quiet:
        skipped = len(cells) - len(pending)
        resumed = f" ({skipped} resumed from {args.resume})" if skipped else ""
        print(
            f"campaign grid: {len(pending)} campaigns across "
            f"{min(grid.max_workers, len(pending)) or 1} worker(s){resumed}",
            file=sys.stderr,
        )

    def progress(cell_id: str, campaign) -> None:
        if not args.quiet:
            print(f"  done {cell_id}: {campaign.summary().strip()}", file=sys.stderr)

    if observing:
        # A grid-level runtime adopts each observed cell's trace events
        # as they are collected, so one --trace file covers every cell.
        with observed(Observability()) as obs:
            with obs.tracer.span("grid.run", cells=len(pending)):
                outcome = grid.run(
                    on_progress=progress,
                    stream_path=stream_path,
                    completed=completed,
                    fingerprints=fingerprints,
                )
            grid_tracer = obs.tracer
            grid_snapshot = obs.metrics.snapshot()
    else:
        outcome = grid.run(
            on_progress=progress,
            stream_path=stream_path,
            completed=completed,
            fingerprints=fingerprints,
        )
        grid_tracer = None
        grid_snapshot = None

    failures = 0
    if args.trace:
        assert grid_tracer is not None
        try:
            if args.trace.endswith(".jsonl"):
                grid_tracer.write_jsonl(args.trace)
            else:
                grid_tracer.write_chrome(args.trace)
            if not args.quiet:
                print(f"trace written to {args.trace}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.trace}: {error}", file=sys.stderr)
            failures += 1
    if args.metrics_json:
        assert grid_snapshot is not None
        snapshots = [grid_snapshot] + [
            record["metrics"]
            for record in outcome.cell_summaries.values()
            if isinstance(record.get("metrics"), dict)
        ]
        merged = merge_snapshots(snapshots)
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(merged, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if not args.quiet:
                print(f"metrics written to {args.metrics_json}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.metrics_json}: {error}", file=sys.stderr)
            failures += 1
    if args.stats_json:
        stats_document = {
            "cells": {
                cell_id: {
                    "engine": record.get("engine"),
                    "cache": record.get("cache"),
                }
                for cell_id, record in outcome.cell_summaries.items()
            },
            "totals": {
                "engine": outcome.engine_totals(),
                "cache": outcome.cache_totals(),
            },
        }
        try:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(stats_document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if not args.quiet:
                print(f"stats written to {args.stats_json}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.stats_json}: {error}", file=sys.stderr)
            failures += 1

    if not args.quiet:
        line = _stats_line(outcome)
        if line:
            print(line, file=sys.stderr)

    summary = json.dumps(outcome.summary(), indent=2, sort_keys=True)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(summary + "\n")
        except OSError as error:
            # Never lose finished campaigns to an output error.
            print(f"could not write {args.json}: {error}", file=sys.stderr)
            print(summary)
            return 1
        if not args.quiet:
            print(f"summary written to {args.json}", file=sys.stderr)
    else:
        print(summary)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
