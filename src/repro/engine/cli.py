"""``python -m repro.engine``: campaign grids, service mode, workers.

The default invocation runs a campaign grid in-process: build the
(firmware x workload x strategy x budget) matrix from the flags, shard
it across worker processes, stream one progress line per finished
campaign, and print (or write) a JSON summary.  Subcommands run the
same matrices through the distributed fabric:

``serve``
    Start the campaign service daemon (FIFO job queue, JSONL record
    streaming to any number of clients).
``submit``
    Submit a matrix to a running service and follow its record stream.
``status``
    Print a running service's job table.
``worker``
    Serve simulations of one grid cell's context to remote-backend
    controllers (``--backend remote:host:port``).

Examples
--------
Run the Table III strategy grid on both firmwares with 4 workers::

    python -m repro.engine --firmware ardupilot px4 \
        --strategy avis stratified-bfi bfi random \
        --workload waypoint --budget 60 --workers 4 --json table3.json

Quick smoke campaign::

    python -m repro.engine --strategy random --budget 6 --workers 2

Heterogeneous convoy (ArduPilot lead, PX4 wing) under coordination
faults, with the separation-aware SABRE dequeue::

    python -m repro.engine --workload convoy \
        --vehicle firmware=ardupilot --vehicle firmware=px4,airframe=solo \
        --traffic-faults --separation-aware --strategy avis --budget 20

Service mode (daemon, then two submissions from other shells)::

    python -m repro.engine serve --port 7800 --stream service.jsonl
    python -m repro.engine submit --address 127.0.0.1:7800 \
        --strategy random --budget 6
    python -m repro.engine status --address 127.0.0.1:7800
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

# Matrix vocabulary and expansion live in repro.engine.api; re-exported
# here because this module was their historical home.
from repro.engine.api import (  # noqa: F401  (re-exports)
    AIRFRAMES,
    BURST_STRATEGIES,
    FIRMWARES,
    FIXED_FLEET_WORKLOADS,
    FLEET_WORKLOADS,
    STEPPERS,
    STRATEGIES,
    TRAFFIC_STRATEGIES,
    WORKLOADS,
    CampaignClient,
    CampaignRequest,
    ServiceError,
    parse_vehicle_spec,
)
from repro.engine.api import build_cells as _expand_request
from repro.engine.backends import BACKEND_SPEC_HELP, parse_backend_spec
from repro.engine.grid import (
    CampaignGrid,
    GridCell,
    GridOutcome,
    filter_completed,
    load_completed_cells,
)
from repro.obs.metrics import merge_snapshots
from repro.obs.runtime import Observability, observed

SUBCOMMANDS = ("serve", "submit", "status", "worker")


def add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-matrix flags, shared by the grid path, ``submit``
    and ``worker`` -- one flag vocabulary, one expansion
    (:func:`repro.engine.api.build_cells`)."""
    parser.add_argument(
        "--firmware", nargs="+", choices=sorted(FIRMWARES), default=["ardupilot"],
        help="firmware flavours to check",
    )
    parser.add_argument(
        "--workload", nargs="+",
        choices=list(WORKLOADS),
        default=["waypoint"],
        help="workloads to fly (convoy/crossing/multi-pad need --fleet-size >= 2)",
    )
    parser.add_argument(
        "--fleet-size", type=int, default=1,
        help="vehicles per fleet-workload simulation (convoy/crossing/"
        "multi-pad; classic workloads in the same grid always fly solo)",
    )
    parser.add_argument(
        "--vehicle", action="append", default=None, metavar="SPEC",
        help="per-vehicle spec for fleet workloads, one flag per fleet "
        "member in vehicle order: comma-separated key=value pairs with "
        f"keys 'firmware' ({'/'.join(sorted(FIRMWARES))}) and 'airframe' "
        f"({'/'.join(sorted(AIRFRAMES))}), e.g. "
        "--vehicle firmware=ardupilot --vehicle firmware=px4,airframe=solo. "
        "Defines the fleet size; overrides --firmware for fleet workloads.",
    )
    parser.add_argument(
        "--traffic-faults", action="store_true",
        help="open the inter-vehicle traffic channel to injection: adds "
        "the coordination fault family (beacon dropout/freeze/delay, one "
        "handle per vehicle) to the fault space of fleet campaigns. "
        f"Only the strategies that draw from the extended space "
        f"({'/'.join(sorted(TRAFFIC_STRATEGIES))}) may be combined with it.",
    )
    parser.add_argument(
        "--separation-aware", action="store_true",
        help="SABRE: dequeue transition windows tightest-profiled-fleet-"
        "geometry first instead of FIFO (fleet campaigns with the 'avis' "
        "strategy)",
    )
    parser.add_argument(
        "--burst-duration", nargs="+", type=float, default=None,
        metavar="SECONDS",
        help="explore intermittent faults: besides the latched faults, "
        "sweep recovering variants whose fault window closes after the "
        "given duration(s).  The default fault model (latched, never "
        "recovering) is unchanged.  Applies to the strategies that "
        f"enumerate burst windows ({'/'.join(sorted(BURST_STRATEGIES))}).",
    )
    parser.add_argument(
        "--stepper", choices=list(STEPPERS),
        default="reference",
        help="simulation stepping mode for every cell: 'reference' is "
        "the classic per-vehicle lock-step loop, 'soa' the batched "
        "structure-of-arrays physics core (bit-identical, shares cache "
        "entries with 'reference'), 'adaptive' additionally fuses "
        "micro-steps while no fault window, checkpoint, mode transition "
        "or proximity hazard is near (same verdicts, own cache keys)",
    )
    parser.add_argument(
        "--strategy", nargs="+", choices=sorted(STRATEGIES),
        default=["avis", "stratified-bfi", "bfi", "random"],
        help="search strategies to compare",
    )
    parser.add_argument(
        "--budget", nargs="+", type=float, default=[30.0],
        help="budget(s) in simulation-cost units; one grid axis per value",
    )
    parser.add_argument(
        "--per-dequeue", type=int, default=None, metavar="N",
        help="SABRE: candidate scenarios expanded (and simulated "
        "concurrently) per transition dequeue before the entry is "
        "re-queued; 0 disables the bound (exact Algorithm 1). "
        "Default: the AvisStrategy default (6). "
        "Only the 'avis' strategy consumes this.",
    )
    parser.add_argument("--profiling-runs", type=int, default=2)
    parser.add_argument("--altitude", type=float, default=15.0)
    parser.add_argument("--box-side", type=float, default=15.0)


def add_fabric_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-fabric flags: where cells run and cache."""
    fabric = parser.add_argument_group("execution fabric")
    fabric.add_argument(
        "--backend", metavar="SPEC", default="serial",
        help="execution backend for every cell's campaign engine: "
        + BACKEND_SPEC_HELP,
    )
    fabric.add_argument(
        "--cache", metavar="SPEC", default=None,
        help="shared result cache: a directory path, or "
        "'remote:HOST:PORT' naming a cache server "
        "(python -c 'from repro.engine.cache_remote import ...'); "
        "default: a private in-memory cache per cell",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Shard a (firmware x workload x strategy x budget) "
        "campaign matrix across worker processes.  Subcommands "
        f"({', '.join(SUBCOMMANDS)}) run the same matrices through the "
        "campaign service and remote workers.",
    )
    add_matrix_arguments(parser)
    add_fabric_arguments(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count, capped at 4)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the JSON summary here instead of stdout",
    )
    parser.add_argument(
        "--stream", metavar="PATH", default=None,
        help="append one JSON line per finished campaign to this file "
        "(a killed grid can later resume from it)",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="skip campaigns already recorded in this stream file and "
        "keep appending new ones to it",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-campaign progress lines"
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record structured spans across every campaign and write a "
        "Chrome-trace JSON file here (open in chrome://tracing or "
        "https://ui.perfetto.dev); a path ending in .jsonl writes the "
        "event stream form instead.  Observing never changes campaign "
        "outcomes or cell fingerprints.",
    )
    observability.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write the merged metrics snapshot (engine rounds, cache "
        "traffic, worker utilisation, SABRE prune reasons, per-run phase "
        "timings) of every campaign here as JSON",
    )
    observability.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="write per-cell engine/cache scheduling stats "
        "(CampaignEngine.last_stats and ResultCache.stats) plus grid "
        "totals here as JSON",
    )
    return parser


def request_from_args(args: argparse.Namespace) -> CampaignRequest:
    """The :class:`CampaignRequest` a flag namespace describes.

    This is the flags -> API bridge: everything downstream (expansion,
    validation, execution) happens on the request, so CLI and service
    submissions are literally the same code path.
    """
    return CampaignRequest(
        firmwares=tuple(args.firmware),
        workloads=tuple(args.workload),
        strategies=tuple(args.strategy),
        budgets=tuple(args.budget),
        fleet_size=args.fleet_size,
        vehicles=tuple(args.vehicle) if args.vehicle else (),
        traffic_faults=args.traffic_faults,
        separation_aware=args.separation_aware,
        burst_durations=(
            tuple(args.burst_duration) if args.burst_duration else ()
        ),
        per_dequeue=args.per_dequeue,
        stepper=args.stepper,
        profiling_runs=args.profiling_runs,
        altitude=args.altitude,
        box_side=args.box_side,
        backend=getattr(args, "backend", "serial"),
        cache=getattr(args, "cache", None),
        workers=getattr(args, "workers", None),
    )


def build_cells(args: argparse.Namespace) -> List[GridCell]:
    """Expand a flag namespace into grid cells (kept for callers that
    grew up with the CLI; new code should build a
    :class:`CampaignRequest` and call :func:`repro.engine.api.build_cells`)."""
    return _expand_request(request_from_args(args))


def _stats_line(outcome: GridOutcome) -> Optional[str]:
    """The final scheduling-stats summary line (None when unavailable,
    e.g. every cell was resumed from a pre-stats stream file)."""

    def fmt(value: object) -> str:
        return f"{value:g}" if isinstance(value, (int, float)) else "?"

    parts = []
    engine = outcome.engine_totals()
    if engine:
        parts.append(
            "engine: rounds={} proposed={} cache_hits={} executed={}".format(
                *(fmt(engine.get(key)) for key in
                  ("rounds", "proposed", "cache_hits", "executed"))
            )
        )
    cache = outcome.cache_totals()
    if cache:
        parts.append(
            "cache: hits={} misses={} evictions={}".format(
                *(fmt(cache.get(key)) for key in
                  ("hits", "misses", "evictions"))
            )
        )
    return " | ".join(parts) if parts else None


def _grid_main(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Fail fast on every output path: campaigns can run for minutes; an
    # unwritable path must not surface only after the grid has finished.
    for flag, value in (("--json", args.json), ("--stream", args.stream),
                        ("--resume", args.resume), ("--trace", args.trace),
                        ("--metrics-json", args.metrics_json),
                        ("--stats-json", args.stats_json)):
        if not value:
            continue
        directory = os.path.dirname(os.path.abspath(value))
        if not os.path.isdir(directory):
            parser.error(f"{flag}: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"{flag}: directory is not writable: {directory}")
    try:
        parse_backend_spec(args.backend)
    except ValueError as error:
        parser.error(f"--backend: {error}")
    stream_path = args.stream
    completed = {}
    if args.resume:
        stream_path = stream_path or args.resume
        try:
            completed = load_completed_cells(args.resume)
        except OSError as error:
            parser.error(f"--resume: cannot read {args.resume}: {error}")
    try:
        cells = build_cells(args)
    except ValueError as error:
        parser.error(str(error))
    observing = bool(args.trace or args.metrics_json)
    if observing:
        # Observed cells run under fresh per-cell runtimes and return
        # their metrics/trace with the summary; 'observe' is never part
        # of the cell fingerprint, so --resume semantics are unchanged.
        for cell in cells:
            cell.observe = True
    grid = CampaignGrid(cells, max_workers=args.workers)
    fingerprints = grid.fingerprints()
    completed = filter_completed(cells, completed, fingerprints)
    pending = [cell for cell in cells if cell.cell_id not in completed]
    if not args.quiet:
        skipped = len(cells) - len(pending)
        resumed = f" ({skipped} resumed from {args.resume})" if skipped else ""
        print(
            f"campaign grid: {len(pending)} campaigns across "
            f"{min(grid.max_workers, len(pending)) or 1} worker(s){resumed}",
            file=sys.stderr,
        )

    def progress(cell_id: str, campaign) -> None:
        if not args.quiet:
            print(f"  done {cell_id}: {campaign.summary().strip()}", file=sys.stderr)

    if observing:
        # A grid-level runtime adopts each observed cell's trace events
        # as they are collected, so one --trace file covers every cell.
        with observed(Observability()) as obs:
            with obs.tracer.span("grid.run", cells=len(pending)):
                outcome = grid.run(
                    on_progress=progress,
                    stream_path=stream_path,
                    completed=completed,
                    fingerprints=fingerprints,
                )
            grid_tracer = obs.tracer
            grid_snapshot = obs.metrics.snapshot()
    else:
        outcome = grid.run(
            on_progress=progress,
            stream_path=stream_path,
            completed=completed,
            fingerprints=fingerprints,
        )
        grid_tracer = None
        grid_snapshot = None

    failures = 0
    if args.trace:
        assert grid_tracer is not None
        try:
            if args.trace.endswith(".jsonl"):
                grid_tracer.write_jsonl(args.trace)
            else:
                grid_tracer.write_chrome(args.trace)
            if not args.quiet:
                print(f"trace written to {args.trace}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.trace}: {error}", file=sys.stderr)
            failures += 1
    if args.metrics_json:
        assert grid_snapshot is not None
        snapshots = [grid_snapshot] + [
            record["metrics"]
            for record in outcome.cell_summaries.values()
            if isinstance(record.get("metrics"), dict)
        ]
        merged = merge_snapshots(snapshots)
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(merged, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if not args.quiet:
                print(f"metrics written to {args.metrics_json}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.metrics_json}: {error}", file=sys.stderr)
            failures += 1
    if args.stats_json:
        stats_document = {
            "cells": {
                cell_id: {
                    "engine": record.get("engine"),
                    "cache": record.get("cache"),
                }
                for cell_id, record in outcome.cell_summaries.items()
            },
            "totals": {
                "engine": outcome.engine_totals(),
                "cache": outcome.cache_totals(),
            },
        }
        try:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(stats_document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if not args.quiet:
                print(f"stats written to {args.stats_json}", file=sys.stderr)
        except OSError as error:
            print(f"could not write {args.stats_json}: {error}", file=sys.stderr)
            failures += 1

    if not args.quiet:
        line = _stats_line(outcome)
        if line:
            print(line, file=sys.stderr)

    summary = json.dumps(outcome.summary(), indent=2, sort_keys=True)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(summary + "\n")
        except OSError as error:
            # Never lose finished campaigns to an output error.
            print(f"could not write {args.json}: {error}", file=sys.stderr)
            print(summary)
            return 1
        if not args.quiet:
            print(f"summary written to {args.json}", file=sys.stderr)
    else:
        print(summary)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Subcommands: serve / submit / status / worker
# ----------------------------------------------------------------------
def _serve_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine serve",
        description="Run the campaign service daemon: accept campaign "
        "requests over TCP, run them one at a time in FIFO order, and "
        "stream each finished cell's record to watching clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listening port (default: an ephemeral port, printed on start)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after N jobs have finished (CI smoke runs use this "
        "to run a real daemon without having to kill it)",
    )
    parser.add_argument(
        "--stream", metavar="PATH", default=None,
        help="also append every job's records to this JSONL file "
        "(the --stream/--resume grid format)",
    )
    args = parser.parse_args(argv)
    from repro.engine.service import CampaignService

    service = CampaignService(
        host=args.host, port=args.port,
        max_jobs=args.max_jobs, stream_path=args.stream,
    )
    print(f"campaign service listening on {service.endpoint}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _submit_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine submit",
        description="Submit a campaign matrix to a running service.",
    )
    parser.add_argument(
        "--address", required=True, metavar="HOST:PORT",
        help="the service endpoint (printed by 'serve' on start)",
    )
    add_matrix_arguments(parser)
    add_fabric_arguments(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="grid shard processes on the service side",
    )
    parser.add_argument(
        "--stream", metavar="PATH", default=None,
        help="append each streamed record to this JSONL file locally",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="submit and print the job id without following the stream",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-record progress lines"
    )
    args = parser.parse_args(argv)
    try:
        request = request_from_args(args)
        client = CampaignClient(args.address)
        job_id = client.submit(request)
    except (ServiceError, ValueError, OSError) as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 1
    print(f"submitted {job_id}", file=sys.stderr)
    if args.no_wait:
        print(job_id)
        return 0
    records = []
    stream = open(args.stream, "a", encoding="utf-8") if args.stream else None
    try:
        for record in client.watch(job_id):
            records.append(record)
            if stream is not None:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
            if not args.quiet:
                print(
                    f"  done {record['cell']}: {record['simulations']} "
                    f"simulations, {record['unsafe_scenarios']} unsafe",
                    file=sys.stderr,
                )
    except (ServiceError, OSError) as error:
        print(f"{job_id} failed: {error}", file=sys.stderr)
        return 1
    finally:
        if stream is not None:
            stream.close()
    print(json.dumps({"job": job_id, "records": records},
                     indent=2, sort_keys=True))
    return 0


def _status_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine status",
        description="Print a running campaign service's job table.",
    )
    parser.add_argument("--address", required=True, metavar="HOST:PORT")
    parser.add_argument(
        "--job", default=None, metavar="JOB-ID",
        help="one job's entry (with its summary once finished)",
    )
    args = parser.parse_args(argv)
    try:
        reply = CampaignClient(args.address).status(args.job)
    except (ServiceError, ValueError, OSError) as error:
        print(f"status failed: {error}", file=sys.stderr)
        return 1
    reply.pop("ok", None)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _worker_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine worker",
        description="Serve simulations of one grid cell's context to "
        "remote-backend controllers.  The matrix flags must resolve to "
        "exactly one cell; the worker profiles the workload itself "
        "(deterministically, so its context fingerprint matches every "
        "controller running the same cell) and then serves tasks until "
        "a controller sends shutdown.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listening port (default: an ephemeral port, printed on start)",
    )
    add_matrix_arguments(parser)
    args = parser.parse_args(argv)
    try:
        cells = build_cells(args)
    except ValueError as error:
        parser.error(str(error))
    if len(cells) != 1:
        parser.error(
            f"worker flags must resolve to exactly one cell, got "
            f"{len(cells)}: {', '.join(cell.cell_id for cell in cells)}"
        )
    cell = cells[0]
    from repro.core.avis import Avis
    from repro.engine.remote import WorkerServer

    print(f"profiling {cell.cell_id} ...", file=sys.stderr, flush=True)
    avis = Avis(
        cell.config,
        profiling_runs=cell.profiling_runs,
        budget_units=cell.budget_units,
        traffic_faults=cell.traffic_faults,
    )
    server = WorkerServer(cell.config, avis.monitor, host=args.host,
                          port=args.port)
    print(
        f"worker serving {cell.cell_id} on "
        f"{server.address[0]}:{server.address[1]} "
        f"(context {server.fingerprint[:16]})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        handler: Dict[str, object] = {
            "serve": _serve_main,
            "submit": _submit_main,
            "status": _status_main,
            "worker": _worker_main,
        }[argv[0]]
        return handler(argv[1:])
    return _grid_main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
