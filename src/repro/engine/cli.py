"""``python -m repro.engine``: run a campaign grid from the command line.

Builds the (firmware x workload x strategy x budget) matrix from the
flags, shards it across worker processes, streams one progress line per
finished campaign, and prints (or writes) a JSON summary.

Examples
--------
Run the Table III strategy grid on both firmwares with 4 workers::

    python -m repro.engine --firmware ardupilot px4 \
        --strategy avis stratified-bfi bfi random \
        --workload waypoint --budget 60 --workers 4 --json table3.json

Quick smoke campaign::

    python -m repro.engine --strategy random --budget 6 --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import RunConfiguration
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    StratifiedBFI,
)
from repro.engine.grid import CampaignGrid, GridCell
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.workloads.builtin import (
    AutoWorkload,
    PositionHoldBoxWorkload,
    WaypointFenceWorkload,
)

FIRMWARES = {"ardupilot": ArduPilotFirmware, "px4": Px4Firmware}

STRATEGIES: Dict[str, Callable[[], object]] = {
    "avis": AvisStrategy,
    "stratified-bfi": StratifiedBFI,
    "bfi": BayesianFaultInjection,
    "random": RandomInjection,
    "depth-first": DepthFirstSearch,
    "breadth-first": BreadthFirstSearch,
}


def _workload_factory(name: str, altitude: float, box_side: float):
    if name == "auto":
        return lambda: AutoWorkload(altitude=altitude)
    if name == "waypoint":
        return lambda: WaypointFenceWorkload(altitude=altitude, box_side=box_side)
    if name == "poshold":
        return lambda: PositionHoldBoxWorkload(altitude=altitude, box_side=box_side)
    raise ValueError(f"unknown workload '{name}'")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Shard a (firmware x workload x strategy x budget) "
        "campaign matrix across worker processes.",
    )
    parser.add_argument(
        "--firmware", nargs="+", choices=sorted(FIRMWARES), default=["ardupilot"],
        help="firmware flavours to check",
    )
    parser.add_argument(
        "--workload", nargs="+", choices=["auto", "waypoint", "poshold"],
        default=["waypoint"], help="workloads to fly",
    )
    parser.add_argument(
        "--strategy", nargs="+", choices=sorted(STRATEGIES),
        default=["avis", "stratified-bfi", "bfi", "random"],
        help="search strategies to compare",
    )
    parser.add_argument(
        "--budget", nargs="+", type=float, default=[30.0],
        help="budget(s) in simulation-cost units; one grid axis per value",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count, capped at 4)",
    )
    parser.add_argument("--profiling-runs", type=int, default=2)
    parser.add_argument("--altitude", type=float, default=15.0)
    parser.add_argument("--box-side", type=float, default=15.0)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the JSON summary here instead of stdout",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-campaign progress lines"
    )
    return parser


def build_cells(args: argparse.Namespace) -> List[GridCell]:
    cells: List[GridCell] = []
    for firmware_name in args.firmware:
        for workload_name in args.workload:
            config = RunConfiguration(
                firmware_class=FIRMWARES[firmware_name],
                workload_factory=_workload_factory(
                    workload_name, args.altitude, args.box_side
                ),
            )
            for strategy_name in args.strategy:
                for budget in args.budget:
                    cells.append(
                        GridCell(
                            cell_id=f"{firmware_name}/{workload_name}/"
                            f"{strategy_name}/{budget:g}",
                            config=config,
                            strategy_factory=STRATEGIES[strategy_name],
                            budget_units=budget,
                            profiling_runs=args.profiling_runs,
                        )
                    )
    return cells


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.json:
        # Fail fast: campaigns can run for minutes; an unwritable output
        # path must not surface only after the grid has finished.
        directory = os.path.dirname(os.path.abspath(args.json))
        if not os.path.isdir(directory):
            parser.error(f"--json: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"--json: directory is not writable: {directory}")
    cells = build_cells(args)
    grid = CampaignGrid(cells, max_workers=args.workers)
    if not args.quiet:
        print(
            f"campaign grid: {len(cells)} campaigns across "
            f"{min(grid.max_workers, len(cells))} worker(s)",
            file=sys.stderr,
        )

    def progress(cell_id: str, campaign) -> None:
        if not args.quiet:
            print(f"  done {cell_id}: {campaign.summary().strip()}", file=sys.stderr)

    outcome = grid.run(on_progress=progress)
    summary = json.dumps(outcome.summary(), indent=2, sort_keys=True)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(summary + "\n")
        except OSError as error:
            # Never lose finished campaigns to an output error.
            print(f"could not write {args.json}: {error}", file=sys.stderr)
            print(summary)
            return 1
        if not args.quiet:
            print(f"summary written to {args.json}", file=sys.stderr)
    else:
        print(summary)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
