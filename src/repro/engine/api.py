"""The campaign submission API: one request type, two execution paths.

Historically a campaign matrix could only be described as CLI flags
(``python -m repro.engine --firmware ... --strategy ...``) or by
hand-building :class:`~repro.engine.grid.GridCell` lists.  This module
redesigns that surface around a single declarative value:

* :class:`CampaignRequest` -- a plain dataclass naming the matrix
  (firmwares x workloads x strategies x budgets), the fleet, the fault
  families, and the execution fabric (backend spec, shared cache,
  worker count).  It round-trips through JSON (:meth:`to_dict` /
  :meth:`from_dict`), which is exactly what the campaign service
  transports over the wire.
* :func:`build_cells` -- the canonical request -> grid-cell expansion.
  The CLI's ``build_cells(args)`` is now a thin wrapper over this, so a
  request submitted to the service produces byte-identical cell ids and
  fingerprints to the same matrix typed as flags.
* :func:`run_campaign` -- the in-process path: expand, shard, stream.
* :class:`CampaignClient` -- one client for both paths.  Without an
  address it runs the request in-process; with ``address="host:port"``
  it submits to a :mod:`repro.engine.service` daemon and follows the
  job's record stream.

Every record produced by either path is the same JSONL schema the grid
CLI streams (``--stream``/``--resume``), so resuming, validating
(``repro.obs report --validate``) and summarising work unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import socket
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    StratifiedBFI,
)
from repro.engine.grid import (
    CampaignGrid,
    GridCell,
    GridOutcome,
    filter_completed,
    load_completed_cells,
)
from repro.engine.remote import (
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.sim.vehicle import IRIS_QUADCOPTER, SOLO_QUADCOPTER
from repro.workloads.builtin import (
    AutoWorkload,
    PositionHoldBoxWorkload,
    WaypointFenceWorkload,
)
from repro.workloads.fleet import (
    ConvoyFollowWorkload,
    CrossingPathsWorkload,
    MultiPadTakeoffLandWorkload,
)

FIRMWARES = {"ardupilot": ArduPilotFirmware, "px4": Px4Firmware}

AIRFRAMES = {"iris": IRIS_QUADCOPTER, "solo": SOLO_QUADCOPTER}

#: Workloads that need a fleet, mapped to the minimum fleet size each
#: implies (taken from the workload classes so the API cannot drift).
FLEET_WORKLOADS = {
    "convoy": ConvoyFollowWorkload.fleet_size,
    "crossing": CrossingPathsWorkload.fleet_size,
    # Multi-pad scales to whatever fleet_size asks for; two vehicles is
    # the smallest fleet its constructor accepts.
    "multi-pad": 2,
}

#: Fleet workloads whose choreography flies a fixed number of vehicles;
#: any other fleet_size would provision vehicles that never fly.
FIXED_FLEET_WORKLOADS = {
    "convoy": ConvoyFollowWorkload.fleet_size,
    "crossing": CrossingPathsWorkload.fleet_size,
}

STRATEGIES: Dict[str, Callable[[], object]] = {
    "avis": AvisStrategy,
    "stratified-bfi": StratifiedBFI,
    "bfi": BayesianFaultInjection,
    "random": RandomInjection,
    "depth-first": DepthFirstSearch,
    "breadth-first": BreadthFirstSearch,
}

#: Strategies that draw from ``session.injectable_failures`` and can
#: therefore explore the coordination fault space.  The BFI family
#: scores candidates through a sensor-typed model and the exhaustive
#: enumerators eagerly materialise every failure subset, so a
#: traffic-faults grid restricted to these strategies is the honest
#: option: a cell tagged ``+traffic`` really injects them.
TRAFFIC_STRATEGIES = frozenset({"avis", "random"})

#: Strategies that can sweep intermittent (recovering) fault windows
#: next to the latched faults; burst durations are rejected for any
#: other strategy so a cell tagged ``+burst`` really explores bursts.
BURST_STRATEGIES = frozenset({"avis", "stratified-bfi", "bfi"})

WORKLOADS = ("auto", "waypoint", "poshold", "convoy", "crossing", "multi-pad")

STEPPERS = ("reference", "soa", "adaptive")


def parse_vehicle_spec(text: str) -> VehicleSpec:
    """Parse one vehicle spec: ``firmware=px4,airframe=solo``."""
    kwargs = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"--vehicle: expected key=value pairs, got '{item}'"
            )
        key, value = (part.strip() for part in item.split("=", 1))
        if key == "firmware":
            if value not in FIRMWARES:
                raise ValueError(
                    f"--vehicle: unknown firmware '{value}' "
                    f"(choose from {', '.join(sorted(FIRMWARES))})"
                )
            kwargs["firmware_class"] = FIRMWARES[value]
        elif key == "airframe":
            if value not in AIRFRAMES:
                raise ValueError(
                    f"--vehicle: unknown airframe '{value}' "
                    f"(choose from {', '.join(sorted(AIRFRAMES))})"
                )
            kwargs["airframe"] = AIRFRAMES[value]
        else:
            raise ValueError(
                f"--vehicle: unknown key '{key}' (use firmware/airframe)"
            )
    return VehicleSpec(**kwargs)


@dataclass
class CampaignRequest:
    """A declarative campaign matrix plus its execution fabric.

    The matrix axes (``firmwares x workloads x strategies x budgets``)
    and the per-cell knobs mirror the grid CLI flags one-to-one; the
    defaults are the CLI defaults, so ``CampaignRequest()`` is exactly
    ``python -m repro.engine`` with no flags.  ``backend``, ``cache``
    and ``workers`` describe *where* the work runs and never enter cell
    fingerprints -- the same request is bit-identical on every fabric.

    Requests round-trip through plain dicts (and therefore JSON): this
    is the submission payload the campaign service accepts.
    """

    firmwares: Tuple[str, ...] = ("ardupilot",)
    workloads: Tuple[str, ...] = ("waypoint",)
    strategies: Tuple[str, ...] = ("avis", "stratified-bfi", "bfi", "random")
    budgets: Tuple[float, ...] = (30.0,)
    fleet_size: int = 1
    #: Per-vehicle fleet specs, one string per fleet member in vehicle
    #: order (``"firmware=px4,airframe=solo"``).  Kept textual so the
    #: request stays JSON-serialisable; parsed by :func:`build_cells`.
    vehicles: Tuple[str, ...] = ()
    traffic_faults: bool = False
    separation_aware: bool = False
    burst_durations: Tuple[float, ...] = ()
    per_dequeue: Optional[int] = None
    stepper: str = "reference"
    profiling_runs: int = 2
    altitude: float = 15.0
    box_side: float = 15.0
    #: Execution backend spec for every cell's campaign engine:
    #: ``"serial"``, ``"pool[:N]"`` or ``"remote:..."`` (see
    #: :data:`repro.engine.backends.BACKEND_SPEC_HELP`).
    backend: str = "serial"
    #: Shared result cache: a directory path, or ``"remote:host:port"``
    #: for a :class:`~repro.engine.cache_remote.CacheServer`.  None runs
    #: each cell on its private in-memory cache.
    cache: Optional[str] = None
    #: Grid shard processes (None: CPU count, capped at 4).
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        # Tolerate lists (the JSON spelling) everywhere a tuple is due.
        for name in (
            "firmwares", "workloads", "strategies", "budgets", "vehicles",
            "burst_durations",
        ):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def to_dict(self) -> dict:
        """The JSON-serialisable form (tuples become lists)."""
        payload = dataclasses.asdict(self)
        for name, value in payload.items():
            if isinstance(value, tuple):
                payload[name] = list(value)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys are ignored, so payloads written by a newer client
        still submit to an older service (the cells the older code can
        build are the cells it builds).
        """
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {
            key: value for key, value in payload.items() if key in names
        }
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignRequest":
        return cls.from_dict(json.loads(text))

    def cells(self) -> List[GridCell]:
        """The expanded grid cells (validates the request)."""
        return build_cells(self)


def _workload_factory(name: str, altitude: float, box_side: float, fleet_size: int):
    if name == "auto":
        return lambda: AutoWorkload(altitude=altitude)
    if name == "waypoint":
        return lambda: WaypointFenceWorkload(altitude=altitude, box_side=box_side)
    if name == "poshold":
        return lambda: PositionHoldBoxWorkload(altitude=altitude, box_side=box_side)
    if name == "convoy":
        return lambda: ConvoyFollowWorkload()
    if name == "crossing":
        return lambda: CrossingPathsWorkload()
    if name == "multi-pad":
        return lambda: MultiPadTakeoffLandWorkload(fleet_size=max(fleet_size, 2))
    raise ValueError(f"unknown workload '{name}'")


def _strategy_factory(strategy_name: str, request: CampaignRequest):
    """The per-cell strategy factory, honouring the SABRE/burst knobs."""
    bursts = request.burst_durations
    if strategy_name == "avis" and (
        request.per_dequeue is not None
        or request.traffic_faults
        or request.separation_aware
        or bursts
    ):
        kwargs = dict(
            include_traffic_faults=request.traffic_faults,
            separation_aware=request.separation_aware,
            burst_durations=bursts,
        )
        if request.per_dequeue is not None:
            kwargs["max_scenarios_per_dequeue"] = (
                None if request.per_dequeue == 0 else request.per_dequeue
            )
        return lambda: AvisStrategy(**kwargs)
    if strategy_name == "stratified-bfi" and bursts:
        return lambda: StratifiedBFI(burst_durations=bursts)
    if strategy_name == "bfi" and bursts:
        return lambda: BayesianFaultInjection(burst_durations=bursts)
    if strategy_name not in STRATEGIES:
        raise ValueError(
            f"unknown strategy '{strategy_name}' "
            f"(choose from {', '.join(sorted(STRATEGIES))})"
        )
    return STRATEGIES[strategy_name]


def _strategy_id(strategy_name: str, request: CampaignRequest) -> str:
    """The cell-id fragment for a strategy; default knobs keep the
    historical ids so existing stream files still resume."""
    bursts = request.burst_durations
    burst_fragment = (
        "+burst" + ",".join(f"{duration:g}" for duration in bursts)
        if bursts and strategy_name in BURST_STRATEGIES
        else ""
    )
    if strategy_name != "avis":
        return strategy_name + burst_fragment
    fragment = "avis"
    if request.per_dequeue is not None:
        fragment += f"@pd{request.per_dequeue}"
    if request.separation_aware:
        fragment += "+sep"
    return fragment + burst_fragment


def _vehicle_fleet(request: CampaignRequest) -> Optional[Tuple[VehicleSpec, ...]]:
    """The per-vehicle fleet requested via ``vehicles``, if any."""
    if not request.vehicles:
        return None
    specs = tuple(parse_vehicle_spec(text) for text in request.vehicles)
    if len(specs) < 2:
        raise ValueError("--vehicle needs at least two specs (one per fleet member)")
    return specs


def build_cells(request: CampaignRequest) -> List[GridCell]:
    """Expand a request into its grid cells, validating every axis.

    This is the single matrix expansion in the codebase: the grid CLI,
    the in-process :func:`run_campaign` path and the campaign service
    all call it, so a given request yields identical cell ids and
    fingerprints no matter how it was submitted.  (Error messages use
    the CLI flag spellings -- the request fields map one-to-one.)
    """
    if request.stepper not in STEPPERS:
        raise ValueError(
            f"unknown stepper '{request.stepper}' "
            f"(choose from {', '.join(STEPPERS)})"
        )
    for firmware_name in request.firmwares:
        if firmware_name not in FIRMWARES:
            raise ValueError(
                f"unknown firmware '{firmware_name}' "
                f"(choose from {', '.join(sorted(FIRMWARES))})"
            )
    for workload_name in request.workloads:
        if workload_name not in WORKLOADS:
            raise ValueError(
                f"unknown workload '{workload_name}' "
                f"(choose from {', '.join(WORKLOADS)})"
            )
    vehicles = _vehicle_fleet(request)
    fleet_size = request.fleet_size
    if vehicles is not None:
        if not any(workload in FLEET_WORKLOADS for workload in request.workloads):
            raise ValueError(
                "--vehicle applies only to fleet workloads "
                f"({', '.join(sorted(FLEET_WORKLOADS))}); none requested"
            )
        if request.fleet_size not in (1, len(vehicles)):
            raise ValueError(
                f"--fleet-size {request.fleet_size} disagrees with "
                f"{len(vehicles)} --vehicle spec(s)"
            )
        fleet_size = len(vehicles)
    elif request.fleet_size != 1 and not any(
        workload in FLEET_WORKLOADS for workload in request.workloads
    ):
        raise ValueError(
            "--fleet-size applies only to fleet workloads "
            f"({', '.join(sorted(FLEET_WORKLOADS))}); none requested"
        )
    if request.traffic_faults and fleet_size < 2 and vehicles is None:
        raise ValueError(
            "--traffic-faults needs a fleet (use --fleet-size or --vehicle)"
        )
    if request.traffic_faults:
        unsupported = sorted(set(request.strategies) - TRAFFIC_STRATEGIES)
        if unsupported:
            raise ValueError(
                "--traffic-faults applies only to strategies that explore "
                f"the coordination fault space "
                f"({', '.join(sorted(TRAFFIC_STRATEGIES))}); "
                f"got: {', '.join(unsupported)}"
            )
    if request.burst_durations:
        from repro.hinj.faults import validate_burst_durations

        try:
            validate_burst_durations(request.burst_durations)
        except ValueError:
            raise ValueError("--burst-duration values must be positive seconds")
        unsupported = sorted(set(request.strategies) - BURST_STRATEGIES)
        if unsupported:
            raise ValueError(
                "--burst-duration applies only to strategies that sweep "
                f"recovery windows ({', '.join(sorted(BURST_STRATEGIES))}); "
                f"got: {', '.join(unsupported)}"
            )
    if request.per_dequeue is not None:
        if request.per_dequeue < 0:
            raise ValueError("--per-dequeue must be >= 0 (0 disables the bound)")
        if "avis" not in request.strategies:
            raise ValueError("--per-dequeue applies only to the 'avis' strategy")
    if request.separation_aware and "avis" not in request.strategies:
        raise ValueError("--separation-aware applies only to the 'avis' strategy")
    cells: List[GridCell] = []
    fleet_cell_ids = set()
    for firmware_name in request.firmwares:
        for workload_name in request.workloads:
            required_fleet = FLEET_WORKLOADS.get(workload_name, 1)
            if required_fleet > 1 and fleet_size < required_fleet:
                raise ValueError(
                    f"workload '{workload_name}' needs --fleet-size >= {required_fleet}"
                )
            if workload_name in FIXED_FLEET_WORKLOADS and (
                fleet_size != FIXED_FLEET_WORKLOADS[workload_name]
            ):
                # Extra vehicles would be provisioned and integrated every
                # step but never flown -- reject rather than burn budget
                # on a campaign whose cell id would overstate the fleet.
                raise ValueError(
                    f"workload '{workload_name}' flies exactly "
                    f"{FIXED_FLEET_WORKLOADS[workload_name]} vehicles; "
                    f"run it with --fleet-size {FIXED_FLEET_WORKLOADS[workload_name]}"
                )
            # Classic workloads in a mixed grid always fly solo; only the
            # fleet workloads consume fleet_size / vehicles.
            is_fleet_cell = required_fleet > 1
            cell_firmware_id = firmware_name
            if is_fleet_cell and vehicles is not None:
                # A per-vehicle fleet fully determines the cell's firmware
                # mix; emit it once rather than once per firmware.
                cell_firmware_id = "+".join(
                    spec.firmware_name for spec in vehicles
                )
                config = RunConfiguration(
                    workload_factory=_workload_factory(
                        workload_name, request.altitude, request.box_side,
                        fleet_size,
                    ),
                    vehicles=vehicles,
                    stepper=request.stepper,
                )
            else:
                config = RunConfiguration(
                    firmware_class=FIRMWARES[firmware_name],
                    workload_factory=_workload_factory(
                        workload_name, request.altitude, request.box_side,
                        fleet_size,
                    ),
                    fleet_size=fleet_size if is_fleet_cell else 1,
                    stepper=request.stepper,
                )
            workload_id = workload_name
            if is_fleet_cell:
                workload_id = f"{workload_name}@fleet{fleet_size}"
                if request.traffic_faults:
                    workload_id += "+traffic"
            if request.stepper != "reference":
                # Non-default steppers mark the cell id so streams and
                # resumes distinguish them at a glance ('soa' cells still
                # *cache*-share with 'reference' -- they are bit-identical).
                workload_id += f"+{request.stepper}"
            for strategy_name in request.strategies:
                for budget in request.budgets:
                    cell_id = (
                        f"{cell_firmware_id}/{workload_id}/"
                        f"{_strategy_id(strategy_name, request)}/{budget:g}"
                    )
                    if is_fleet_cell and vehicles is not None:
                        if cell_id in fleet_cell_ids:
                            continue
                        fleet_cell_ids.add(cell_id)
                    cells.append(
                        GridCell(
                            cell_id=cell_id,
                            config=config,
                            strategy_factory=_strategy_factory(
                                strategy_name, request
                            ),
                            budget_units=budget,
                            profiling_runs=request.profiling_runs,
                            traffic_faults=(
                                request.traffic_faults and is_fleet_cell
                            ),
                            backend_spec=request.backend,
                            cache_spec=request.cache,
                        )
                    )
    return cells


def run_campaign(
    request: CampaignRequest,
    stream_path: Optional[str] = None,
    resume_path: Optional[str] = None,
    on_progress: Optional[Callable[[str, object], None]] = None,
    on_record: Optional[Callable[[dict], None]] = None,
) -> GridOutcome:
    """Run a request in-process: expand, shard, stream, summarise.

    The in-process twin of submitting to the campaign service --
    identical cells, identical records.  ``on_record`` fires with each
    finished cell's JSONL record (the streamed schema), which is how
    the service multiplexes live progress to its clients.
    """
    cells = build_cells(request)
    grid = CampaignGrid(cells, max_workers=request.workers)
    fingerprints = grid.fingerprints()
    completed: Dict[str, dict] = {}
    if resume_path:
        completed = filter_completed(
            cells, load_completed_cells(resume_path), fingerprints
        )
    return grid.run(
        on_progress=on_progress,
        stream_path=stream_path,
        completed=completed,
        fingerprints=fingerprints,
        on_record=on_record,
    )


class ServiceError(RuntimeError):
    """The campaign service refused or failed a request."""


class CampaignClient:
    """Submit campaign requests -- in-process or to a service daemon.

    ``CampaignClient()`` runs requests in the calling process (no
    daemon involved); ``CampaignClient("host:port")`` submits them to a
    ``python -m repro.engine serve`` daemon and follows the job's
    record stream.  Either way :meth:`run` returns the same list of
    JSONL-schema records, so callers are fabric-agnostic::

        records = CampaignClient().run(CampaignRequest(strategies=("random",),
                                                       budgets=(5.0,)))
    """

    def __init__(
        self,
        address: Optional[Union[str, Tuple[str, int]]] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self._address = tuple(address) if address is not None else None
        self._connect_timeout = connect_timeout

    @property
    def remote(self) -> bool:
        """Whether requests go to a service daemon (vs in-process)."""
        return self._address is not None

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        assert self._address is not None
        sock = socket.create_connection(
            self._address, timeout=self._connect_timeout
        )
        try:
            send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
            reply = recv_frame(sock)
            if not reply.get("ok"):
                raise ServiceError(
                    reply.get("error", "service rejected the connection")
                )
        except BaseException:
            sock.close()
            raise
        return sock

    def _call(self, frame: dict) -> dict:
        with self._connect() as sock:
            send_frame(sock, frame)
            reply = recv_frame(sock)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "service call failed"))
        return reply

    # ------------------------------------------------------------------
    def submit(self, request: CampaignRequest) -> str:
        """Queue a request on the service; returns the job id."""
        if not self.remote:
            raise ServiceError(
                "submit() needs a service address; use run() in-process"
            )
        reply = self._call({"op": "submit", "request": request.to_dict()})
        return reply["job"]

    def status(self, job_id: Optional[str] = None) -> dict:
        """The service's job table, or one job's entry."""
        frame: dict = {"op": "status"}
        if job_id is not None:
            frame["job"] = job_id
        return self._call(frame)

    def shutdown(self) -> None:
        """Ask the service to stop accepting work and exit."""
        self._call({"op": "shutdown"})

    def watch(self, job_id: str, timeout: Optional[float] = None) -> Iterator[dict]:
        """Yield a job's record stream; raises on job failure.

        Records already finished when the watch starts are replayed
        first, so watching is race-free against the scheduler.  The
        final frame (``event: "done"``) carries the job summary and is
        not yielded; a failed job raises :class:`ServiceError`.
        """
        sock = self._connect()
        try:
            if timeout is not None:
                sock.settimeout(timeout)
            send_frame(sock, {"op": "watch", "job": job_id})
            while True:
                frame = recv_frame(sock)
                if not frame.get("ok"):
                    raise ServiceError(frame.get("error", "watch failed"))
                event = frame.get("event")
                if event == "record":
                    yield frame["record"]
                elif event == "done":
                    return
                elif event == "failed":
                    raise ServiceError(
                        frame.get("error", f"job {job_id} failed")
                    )
        finally:
            sock.close()

    def run(
        self,
        request: CampaignRequest,
        stream_path: Optional[str] = None,
        on_record: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        """Run a request to completion; returns its JSONL records.

        In-process mode executes the campaign right here; remote mode
        submits it and follows the record stream.  ``stream_path``
        appends each record as one JSON line (the ``--stream`` format)
        in both modes.
        """
        if not self.remote:
            records: List[dict] = []

            def collect(record: dict) -> None:
                records.append(record)
                if on_record is not None:
                    on_record(record)

            run_campaign(
                request, stream_path=stream_path, on_record=collect
            )
            return records
        job_id = self.submit(request)
        records = []
        stream = open(stream_path, "a", encoding="utf-8") if stream_path else None
        try:
            for record in self.watch(job_id, timeout=timeout):
                records.append(record)
                if stream is not None:
                    stream.write(json.dumps(record, sort_keys=True) + "\n")
                    stream.flush()
                if on_record is not None:
                    on_record(record)
        finally:
            if stream is not None:
                stream.close()
        return records
