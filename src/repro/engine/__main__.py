"""Entry point for ``python -m repro.engine``."""

from repro.engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
