"""The campaign service: a daemon that queues and runs campaign jobs.

``python -m repro.engine serve`` turns the in-process campaign path
into a long-lived endpoint: clients submit :class:`CampaignRequest`
payloads (``python -m repro.engine submit`` or
:class:`~repro.engine.api.CampaignClient`), the service expands each
into the same grid cells the CLI would build, runs jobs one at a time
in FIFO order, and multiplexes live progress to any number of watching
clients.

Design points:

* **One scheduler, many listeners.**  Jobs run strictly FIFO on a
  single scheduler thread -- campaigns already shard across processes
  internally, so running jobs concurrently would just thrash the
  machine while destroying the "submitted first, finishes first"
  property operators rely on.  Client connections are cheap threads
  that only read the job table.
* **The wire format is the stream format.**  Watch events carry
  exactly the JSONL records ``--stream`` writes (schema-stamped,
  fingerprinted), so a service-streamed file resumes a CLI grid and
  validates under ``repro.obs report --validate`` -- there is one
  record schema in the system, not two.
* **Instrumented, never observing by default.**  Counters
  (``service.jobs_submitted`` ...) and the queue-depth gauge go to the
  ambient :mod:`repro.obs` runtime when one is installed and cost
  nothing when not.
"""

from __future__ import annotations

import json
import queue
import select
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.api import CampaignRequest, build_cells, run_campaign
from repro.engine.remote import (
    PROTOCOL_VERSION,
    format_address,
    recv_frame,
    send_frame,
)
from repro.obs import runtime as obs_runtime

SERVICE_NAME = "repro-campaign"

#: Job lifecycle: queued -> running -> done | failed.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted campaign and everything it has produced so far."""

    job_id: str
    request: dict
    cells: int
    state: str = "queued"
    records: List[dict] = field(default_factory=list)
    summary: Optional[dict] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    finished_at: Optional[float] = None

    def describe(self) -> dict:
        """The JSON row ``status`` returns for this job."""
        return {
            "job": self.job_id,
            "state": self.state,
            "cells": self.cells,
            "records": len(self.records),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class CampaignService:
    """A TCP daemon running submitted campaigns in FIFO order.

    ``max_jobs`` bounds the service's lifetime: after that many jobs
    have finished (done or failed) the service stops accepting work and
    :meth:`serve_forever` returns -- which is how the CI smoke job runs
    a real daemon without having to kill it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: Optional[int] = None,
        stream_path: Optional[str] = None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._max_jobs = max_jobs
        self._stream_path = stream_path
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._cond = threading.Condition()
        self._stopping = threading.Event()
        self._finished_jobs = 0
        self._next_id = 0
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` endpoint."""
        return self._listener.getsockname()[:2]

    @property
    def endpoint(self) -> str:
        """The bound endpoint as a ``host:port`` string."""
        return format_address(self.address)

    def start(self) -> "CampaignService":
        """Run the acceptor and scheduler threads (non-blocking)."""
        if not self._threads:
            for target, name in (
                (self._accept_loop, "service-accept"),
                (self._scheduler_loop, "service-scheduler"),
            ):
                thread = threading.Thread(target=target, name=name, daemon=True)
                thread.start()
                self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Block until the service stops (shutdown op or job limit)."""
        self.start()
        self._stopping.wait()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def stop(self) -> None:
        """Stop accepting and wake every waiter."""
        self._stopping.set()
        with self._cond:
            self._cond.notify_all()

    def close(self) -> None:
        self.stop()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._listener.close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Acceptor + per-connection command loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,),
                name="service-client", daemon=True,
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._stopping.is_set():
                # Poll with select (not a recv timeout): timing out
                # mid-frame would desync the stream, whereas select only
                # fires once the first byte is waiting.
                try:
                    ready, _, _ = select.select([connection], [], [], 0.5)
                except (OSError, ValueError):
                    return
                if not ready:
                    continue
                try:
                    frame = recv_frame(connection)
                    done = self._dispatch(connection, frame)
                except (ConnectionError, OSError):
                    return
                if done:
                    return

    def _dispatch(self, connection: socket.socket, frame: dict) -> bool:
        """Handle one client frame; True ends the connection."""
        op = frame.get("op")
        if op == "hello":
            ok = frame.get("protocol") == PROTOCOL_VERSION
            send_frame(connection, {
                "ok": ok,
                "protocol": PROTOCOL_VERSION,
                "service": SERVICE_NAME,
                "error": None if ok else (
                    f"service speaks protocol {PROTOCOL_VERSION}"
                ),
            })
            return not ok
        if op == "submit":
            send_frame(connection, self._submit(frame.get("request")))
            return False
        if op == "status":
            send_frame(connection, self._status(frame.get("job")))
            return False
        if op == "watch":
            self._watch(connection, frame.get("job"))
            return False
        if op == "shutdown":
            send_frame(connection, {"ok": True})
            self.stop()
            return True
        send_frame(connection, {"ok": False, "error": f"unknown op '{op}'"})
        return False

    # ------------------------------------------------------------------
    def _submit(self, payload: object) -> dict:
        if self._stopping.is_set():
            return {"ok": False, "error": "service is shutting down"}
        if not isinstance(payload, dict):
            return {"ok": False, "error": "submit needs a request object"}
        try:
            request = CampaignRequest.from_dict(payload)
            cells = build_cells(request)
        except (TypeError, ValueError) as error:
            # Reject malformed matrices at submission time -- a queued
            # job that cannot even expand helps nobody.
            return {"ok": False, "error": str(error)}
        with self._cond:
            self._next_id += 1
            job = Job(
                job_id=f"job-{self._next_id:06d}",
                request=request.to_dict(),
                cells=len(cells),
                submitted_at=time.time(),
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._queue.put(job.job_id)
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter("service.jobs_submitted").inc()
            obs.metrics.gauge("service.queue_depth").set(self._queue.qsize())
        return {"ok": True, "job": job.job_id, "cells": job.cells}

    def _status(self, job_id: Optional[str]) -> dict:
        with self._cond:
            if job_id is not None:
                job = self._jobs.get(job_id)
                if job is None:
                    return {"ok": False, "error": f"unknown job '{job_id}'"}
                reply = {"ok": True, "job": job.describe()}
                if job.summary is not None:
                    reply["summary"] = job.summary
                return reply
            return {
                "ok": True,
                "jobs": [self._jobs[jid].describe() for jid in self._order],
            }

    def _watch(self, connection: socket.socket, job_id: Optional[str]) -> None:
        with self._cond:
            job = self._jobs.get(job_id) if job_id else None
        if job is None:
            send_frame(connection, {
                "ok": False, "error": f"unknown job '{job_id}'",
            })
            return
        sent = 0
        while True:
            with self._cond:
                while (
                    len(job.records) <= sent
                    and job.state in ("queued", "running")
                    and not self._stopping.is_set()
                ):
                    self._cond.wait(timeout=0.5)
                fresh = list(job.records[sent:])
                state = job.state
                error = job.error
                summary = job.summary
            # Send outside the lock: a slow client must never stall the
            # scheduler or the other watchers.
            for record in fresh:
                send_frame(connection, {
                    "ok": True, "event": "record", "record": record,
                })
                sent += 1
            if state == "done":
                send_frame(connection, {
                    "ok": True, "event": "done", "job": job.job_id,
                    "summary": summary,
                })
                return
            if state == "failed":
                send_frame(connection, {
                    "ok": True, "event": "failed", "job": job.job_id,
                    "error": error,
                })
                return
            if self._stopping.is_set() and state == "queued":
                send_frame(connection, {
                    "ok": True, "event": "failed", "job": job.job_id,
                    "error": "service stopped before the job ran",
                })
                return

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            with self._cond:
                job = self._jobs[job_id]
                job.state = "running"
                self._cond.notify_all()
            obs = obs_runtime.current()
            if obs is not None:
                obs.metrics.gauge("service.queue_depth").set(self._queue.qsize())
            try:
                request = CampaignRequest.from_dict(job.request)
                outcome = run_campaign(
                    request,
                    on_record=lambda record: self._record(job, record),
                )
                with self._cond:
                    job.summary = outcome.summary()
                    job.state = "done"
                    job.finished_at = time.time()
                    self._cond.notify_all()
                if obs is not None:
                    obs.metrics.counter("service.jobs_completed").inc()
            except Exception as error:  # a failed job must not kill the daemon
                with self._cond:
                    job.error = f"{type(error).__name__}: {error}"
                    job.state = "failed"
                    job.finished_at = time.time()
                    self._cond.notify_all()
                if obs is not None:
                    obs.metrics.counter("service.jobs_failed").inc()
            self._finished_jobs += 1
            if self._max_jobs is not None and self._finished_jobs >= self._max_jobs:
                self.stop()

    def _record(self, job: Job, record: dict) -> None:
        with self._cond:
            job.records.append(record)
            self._cond.notify_all()
        if self._stream_path:
            # One server-side stream across all jobs: records carry cell
            # ids and fingerprints, so the file resumes like any other.
            with open(self._stream_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter("service.records_streamed").inc()
