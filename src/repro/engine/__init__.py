"""The parallel campaign engine.

The engine is the execution layer under :class:`repro.core.avis.Avis`:

* :mod:`repro.engine.backends` -- where batches of simulations run
  (:class:`SerialBackend` in-process, :class:`ProcessPoolBackend` across
  a forked worker pool, :class:`RemoteBackend` across TCP worker
  processes -- all bit-identical; pick one with a backend spec string
  like ``"pool:8"`` or ``"remote:host:port"``).
* :mod:`repro.engine.cache` -- the content-addressed
  :class:`ResultCache`, keyed on ``(firmware, workload, scenario,
  noise seed, params)``, so repeated campaigns skip already-simulated
  scenarios; :mod:`repro.engine.cache_remote` serves one over TCP.
* :mod:`repro.engine.campaign` -- :class:`CampaignEngine`, which drives
  a search strategy's batch proposals through the cache and a backend.
* :mod:`repro.engine.grid` -- :class:`CampaignGrid`, sharding a
  (firmware x workload x strategy x budget) matrix across workers;
  exposed on the command line as ``python -m repro.engine``.
* :mod:`repro.engine.api` -- the submission API:
  :class:`CampaignRequest` (one declarative matrix value),
  :func:`run_campaign` (the in-process path) and
  :class:`CampaignClient` (in-process or service submission).
* :mod:`repro.engine.service` -- ``python -m repro.engine serve``, the
  campaign daemon behind :class:`CampaignClient`.

Grid/api/service symbols are re-exported lazily because those modules
import the orchestrator (which itself imports this package).
"""

from repro.engine.backends import (
    BACKEND_SPEC_HELP,
    ExecutionBackend,
    ProcessPoolBackend,
    RemoteBackend,
    SerialBackend,
    parse_backend_spec,
    resolve_backend,
)
from repro.engine.cache import (
    CacheStore,
    ResultCache,
    adapt_cached_result,
    bug_registry_stamp,
    config_fingerprint,
    scenario_key,
    workload_fingerprint,
)
from repro.engine.campaign import DEFAULT_BATCH_SIZE, CampaignEngine

__all__ = [
    "BACKEND_SPEC_HELP",
    "CacheStore",
    "CampaignClient",
    "CampaignEngine",
    "CampaignGrid",
    "CampaignRequest",
    "CampaignService",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBackend",
    "GridCell",
    "GridOutcome",
    "ProcessPoolBackend",
    "RemoteBackend",
    "ResultCache",
    "STREAM_SCHEMA_VERSION",
    "SerialBackend",
    "ServiceError",
    "adapt_cached_result",
    "build_cells",
    "bug_registry_stamp",
    "config_fingerprint",
    "load_completed_cells",
    "parse_backend_spec",
    "resolve_backend",
    "run_campaign",
    "scenario_key",
    "summarize_campaign",
    "validate_stream_record",
    "workload_fingerprint",
]

#: Lazily-resolved re-exports, mapped to their defining module (these
#: modules import the orchestrator, which imports this package).
_LAZY = {
    "CampaignGrid": "repro.engine.grid",
    "GridCell": "repro.engine.grid",
    "GridOutcome": "repro.engine.grid",
    "STREAM_SCHEMA_VERSION": "repro.engine.grid",
    "load_completed_cells": "repro.engine.grid",
    "summarize_campaign": "repro.engine.grid",
    "validate_stream_record": "repro.engine.grid",
    "CampaignClient": "repro.engine.api",
    "CampaignRequest": "repro.engine.api",
    "ServiceError": "repro.engine.api",
    "build_cells": "repro.engine.api",
    "run_campaign": "repro.engine.api",
    "CampaignService": "repro.engine.service",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
