"""The parallel campaign engine.

The engine is the execution layer under :class:`repro.core.avis.Avis`:

* :mod:`repro.engine.backends` -- where batches of simulations run
  (:class:`SerialBackend` in-process, :class:`ProcessPoolBackend` across
  a forked worker pool with bit-identical results).
* :mod:`repro.engine.cache` -- the content-addressed
  :class:`ResultCache`, keyed on ``(firmware, workload, scenario,
  noise seed, params)``, so repeated campaigns skip already-simulated
  scenarios.
* :mod:`repro.engine.campaign` -- :class:`CampaignEngine`, which drives
  a search strategy's batch proposals through the cache and a backend.
* :mod:`repro.engine.grid` -- :class:`CampaignGrid`, sharding a
  (firmware x workload x strategy x budget) matrix across workers;
  exposed on the command line as ``python -m repro.engine``.

``CampaignGrid``/``GridCell`` are re-exported lazily because the grid
imports the orchestrator (which itself imports this package).
"""

from repro.engine.backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.engine.cache import (
    ResultCache,
    adapt_cached_result,
    bug_registry_stamp,
    config_fingerprint,
    scenario_key,
    workload_fingerprint,
)
from repro.engine.campaign import DEFAULT_BATCH_SIZE, CampaignEngine

__all__ = [
    "CampaignEngine",
    "CampaignGrid",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBackend",
    "GridCell",
    "GridOutcome",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "adapt_cached_result",
    "bug_registry_stamp",
    "config_fingerprint",
    "load_completed_cells",
    "scenario_key",
    "summarize_campaign",
    "workload_fingerprint",
]

_LAZY = {"CampaignGrid", "GridCell", "GridOutcome", "load_completed_cells", "summarize_campaign"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.engine import grid

        return getattr(grid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
