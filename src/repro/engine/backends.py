"""Execution backends: where a batch of simulations actually runs.

The campaign engine hands a backend an ordered batch of fault scenarios
plus the shared run context (configuration and calibrated invariant
monitor); the backend returns one :class:`~repro.core.runner.RunResult`
per scenario, **in submission order**.  Because every run provisions a
fresh harness and the sensor noise is seeded from the configuration
(``iris_sensor_suite(noise_seed=config.noise_seed)``), a run's outcome
is a pure function of ``(config, scenario)`` -- which is what makes the
process-pool backend bit-identical to the serial one.

Three backends ship with the engine:

* :class:`SerialBackend` -- runs the batch in-process, one scenario at a
  time.  The reference implementation and the fallback everywhere a
  process pool is unavailable.
* :class:`ProcessPoolBackend` -- fans the batch out over a
  ``multiprocessing`` pool using the ``fork`` start method.  Fork (not
  spawn) matters: run configurations carry workload factories that are
  frequently lambdas, which cannot be pickled; with fork the workers
  inherit the parent's context and only the scenarios and results cross
  the process boundary.  On platforms without ``fork`` the backend
  degrades to serial execution instead of failing.
* :class:`RemoteBackend` -- ships tasks to worker processes over TCP
  (length-prefixed JSON frames, see :mod:`repro.engine.remote`), either
  self-spawned loopback fork-workers or externally started endpoints.
  Worker loss mid-round requeues the lost tasks on the surviving
  workers, and results are reordered by submission index -- so a remote
  campaign is bit-identical to a serial one.

Backend selection is spec-string-first: :func:`parse_backend_spec` turns
``"serial"``, ``"pool:8"``, ``"remote:2"`` or ``"remote:host:port"``
into a backend, and :func:`resolve_backend` is the single shim through
which :class:`~repro.core.avis.Avis`, the campaign engine and the CLI
accept either a spec or a (deprecated) ready-made instance.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import queue
import threading
import time
import warnings
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration
from repro.core.runner import RunResult, TestRunner
from repro.hinj.faults import FaultScenario
from repro.obs import runtime as obs_runtime

#: Per-batch context inherited by forked workers (config, monitor).
_WORKER_CONTEXT: Optional[Tuple[RunConfiguration, object]] = None

#: Callback type invoked as each result is collected (scenario index, result).
ProgressCallback = Callable[[int, RunResult], None]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _run_one(scenario: FaultScenario) -> RunResult:
    """Execute one scenario inside a forked worker."""
    assert _WORKER_CONTEXT is not None
    config, monitor = _WORKER_CONTEXT
    return TestRunner(config, monitor=monitor).run(scenario)


def _run_indexed(
    item: Tuple[int, FaultScenario]
) -> Tuple[int, RunResult, Optional[Tuple[int, float, float]]]:
    """Execute one (submission index, scenario) pair inside a worker.

    The index rides along so the parent can collect completions in
    whatever order the pool finishes them and still reorder the batch
    back into submission order.  When an observability runtime is
    installed (workers inherit it at fork), a ``(worker pid, start
    clock, execute seconds)`` triple rides along too -- ``perf_counter``
    is CLOCK_MONOTONIC-backed on Linux and therefore comparable across
    forked processes, which is what lets the parent split queue wait
    from execute time.
    """
    index, scenario = item
    if obs_runtime.current() is None:
        return index, _run_one(scenario), None
    start = time.perf_counter()
    result = _run_one(scenario)
    execute_s = time.perf_counter() - start
    return index, result, (os.getpid(), start, execute_s)


class ExecutionBackend(abc.ABC):
    """Executes batches of independent simulations."""

    #: Human-readable backend name used in summaries and logs.
    name: str = "backend"

    @abc.abstractmethod
    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        """Simulate every scenario; results are in submission order."""

    def close(self) -> None:
        """Release any resources held by the backend."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"


class SerialBackend(ExecutionBackend):
    """Run the batch in-process, one scenario after the other."""

    name = "serial"

    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        runner = TestRunner(config, monitor=monitor)
        obs = obs_runtime.current()
        results: List[RunResult] = []
        for index, scenario in enumerate(scenarios):
            if obs is not None:
                start = time.perf_counter()
            result = runner.run(scenario)
            if obs is not None:
                execute_s = time.perf_counter() - start
                obs.metrics.counter("backend.worker_tasks", worker="serial").inc()
                obs.metrics.counter(
                    "backend.worker_execute_seconds", worker="serial"
                ).inc(execute_s)
                obs.metrics.histogram("backend.task_seconds").observe(execute_s)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Fan a batch out over a forked ``multiprocessing`` pool.

    The pool persists across batches as long as the run context (the
    ``(config, monitor)`` pair, compared by identity) is unchanged --
    a campaign issues many small batches and must not pay a fork per
    batch.  A new context forks a fresh pool, since workers inherit the
    context at fork time.  Call :meth:`close` (or let the backend be
    garbage-collected) to release the workers.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count capped at 4.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = max(1, min(4, os.cpu_count() or 1))
        self._max_workers = max(1, max_workers)
        self._serial_fallback = SerialBackend()
        self._pool = None
        # Strong refs: identity comparison stays valid for the pool's
        # lifetime (an id() could be recycled after garbage collection).
        self._pool_context: Optional[Tuple[RunConfiguration, object]] = None

    @property
    def max_workers(self) -> int:
        """The configured pool size."""
        return self._max_workers

    def _ensure_pool(self, config: RunConfiguration, monitor):
        if self._pool is not None:
            held_config, held_monitor = self._pool_context
            if held_config is config and held_monitor is monitor:
                return self._pool
            self.close()
        global _WORKER_CONTEXT  # repro-lint: disable=FAB003 -- set immediately before the pool forks so workers inherit the run context
        _WORKER_CONTEXT = (config, monitor)
        try:
            # The pool is created while the context global is set, so
            # every forked worker inherits (config, monitor) without
            # pickling; only scenarios and results cross the process
            # boundary afterwards.
            self._pool = multiprocessing.get_context("fork").Pool(
                processes=self._max_workers
            )
        finally:
            _WORKER_CONTEXT = None
        self._pool_context = (config, monitor)
        return self._pool

    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        if (
            not scenarios
            or self._max_workers <= 1
            or not _fork_available()
            # Daemonic pool workers (e.g. inside a campaign-grid shard)
            # cannot spawn children; degrade to serial instead of failing.
            or multiprocessing.current_process().daemon
        ):
            return self._serial_fallback.run_scenarios(
                config, monitor, scenarios, on_result
            )

        pool = self._ensure_pool(config, monitor)
        obs = obs_runtime.current()
        submit_clock = time.perf_counter() if obs is not None else 0.0
        # In-flight scheduling: collect completions as the workers finish
        # them (imap_unordered has no head-of-line blocking, so a slow
        # scenario never stalls the progress callback behind it) and
        # reorder into submission order via the indices that rode along.
        slots: List[Optional[RunResult]] = [None] * len(scenarios)
        for index, result, timing in pool.imap_unordered(
            _run_indexed, list(enumerate(scenarios)), chunksize=1
        ):
            if obs is not None and timing is not None:
                worker_pid, start_clock, execute_s = timing
                worker = f"pid{worker_pid}"
                obs.metrics.counter("backend.worker_tasks", worker=worker).inc()
                obs.metrics.counter(
                    "backend.worker_execute_seconds", worker=worker
                ).inc(execute_s)
                obs.metrics.counter(
                    "backend.worker_queue_wait_seconds", worker=worker
                ).inc(max(start_clock - submit_clock, 0.0))
                obs.metrics.histogram("backend.task_seconds").observe(execute_s)
                # Per-run phase metrics recorded inside the worker died
                # with its registry; re-aggregate them from the flight
                # log that travelled back with the result.
                log = getattr(result, "flight_log", None)
                if log is not None:
                    for phase, seconds in log.phase_seconds.items():
                        obs.metrics.counter(
                            "run.phase_seconds", phase=phase
                        ).inc(seconds)
                    for event in log.events:
                        obs.metrics.counter(
                            "run.flight_events", kind=event.kind
                        ).inc()
            slots[index] = result
            if on_result is not None:
                on_result(index, result)
        assert all(result is not None for result in slots)
        return slots  # type: ignore[return-value]

    def close(self) -> None:
        """Terminate the worker pool (if one is running)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_context = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class RemoteBackend(ExecutionBackend):
    """Fan a batch out to worker processes over TCP sockets.

    Two deployment shapes share one wire protocol
    (:mod:`repro.engine.remote`):

    * ``RemoteBackend(workers=N)`` forks N loopback worker processes on
      first use; the workers inherit the ``(config, monitor)`` context
      (compared by identity, exactly like the pool backend) and are
      respawned when the context changes.
    * ``RemoteBackend(addresses=[(host, port), ...])`` connects to
      externally started workers (``python -m repro.engine worker``).
      Each connection is handshaken against the campaign's context
      fingerprint; a worker serving a different context is rejected up
      front rather than contributing wrong results.

    Scheduling: one controller thread per worker connection pulls
    ``(index, scenario)`` tasks off a shared queue and blocks on the
    worker's reply, so every worker has exactly one task in flight and
    the fastest worker naturally takes the most tasks.  A worker that
    dies mid-task (connection loss or reply timeout) has its in-flight
    task requeued on the survivors; when every worker is gone the
    remainder of the batch finishes on the in-process serial fallback,
    so a round always converges.  Results are reordered by submission
    index, which keeps remote == pool == serial bit-identical.
    """

    name = "remote"

    def __init__(
        self,
        addresses: Optional[Sequence[Tuple[str, int]]] = None,
        workers: Optional[int] = None,
        connect_timeout: float = 10.0,
        task_timeout: Optional[float] = 600.0,
        retries: int = 3,
    ) -> None:
        if addresses is not None and workers is not None:
            raise ValueError("pass either addresses or workers, not both")
        if addresses is None and workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self._addresses = [tuple(address) for address in addresses or []]
        self._worker_count = workers
        self._connect_timeout = connect_timeout
        self._task_timeout = task_timeout
        self._retries = max(1, retries)
        self._serial_fallback = SerialBackend()
        # Loopback fleet state, keyed (by identity) to the run context
        # the workers inherited at fork -- a new context respawns them.
        self._loopback: List[object] = []
        self._loopback_context: Optional[Tuple[RunConfiguration, object]] = None
        #: Tasks whose worker was lost and which ran elsewhere (stats).
        self.requeued = 0

    @property
    def max_workers(self) -> int:
        """Worker endpoints this backend fans out to."""
        if self._worker_count is not None:
            return self._worker_count
        return max(1, len(self._addresses))

    @property
    def loopback_workers(self) -> List[object]:
        """Live loopback worker handles (worker-loss tests kill these)."""
        return list(self._loopback)

    def _close_loopback(self) -> None:
        for worker in self._loopback:
            worker.close()
        self._loopback = []
        self._loopback_context = None

    def _worker_addresses(self, config, monitor) -> List[Tuple[str, int]]:
        """The endpoints to connect to, spawning loopback workers if
        this backend owns its fleet."""
        from repro.engine import remote

        if self._worker_count is None:
            return list(self._addresses)
        context = (config, monitor)
        if self._loopback and self._loopback_context is not None:
            held_config, held_monitor = self._loopback_context
            if held_config is config and held_monitor is monitor:
                alive = [worker for worker in self._loopback if worker.alive]
                if alive:
                    return [worker.address for worker in alive]
            self._close_loopback()
        self._loopback = remote.spawn_loopback_workers(
            config, monitor, self._worker_count
        )
        self._loopback_context = context
        return [worker.address for worker in self._loopback]

    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        from repro.engine import remote

        if not scenarios:
            return []
        if self._worker_count is not None and (
            not _fork_available() or multiprocessing.current_process().daemon
        ):
            # A self-spawned fleet needs fork and a non-daemonic parent
            # (grid shards are daemonic); degrade like the pool does.
            return self._serial_fallback.run_scenarios(
                config, monitor, scenarios, on_result
            )

        fingerprint = remote.context_fingerprint(config, monitor)
        addresses = self._worker_addresses(config, monitor)
        connections, failures = remote.connect_workers(
            addresses,
            fingerprint,
            connect_timeout=self._connect_timeout,
            task_timeout=self._task_timeout,
            retries=self._retries,
        )
        if failures and not connections:
            if self._addresses:
                reasons = "; ".join(
                    f"{remote.format_address(address)}: {reason}"
                    for address, reason in failures
                )
                raise ConnectionError(f"no remote worker reachable ({reasons})")
            return self._serial_fallback.run_scenarios(
                config, monitor, scenarios, on_result
            )

        obs = obs_runtime.current()
        tasks: "queue.Queue[Tuple[int, FaultScenario]]" = queue.Queue()
        for item in enumerate(scenarios):
            tasks.put(item)
        slots: List[Optional[RunResult]] = [None] * len(scenarios)
        lock = threading.Lock()
        collected = {"count": 0, "requeued": 0}
        poisoned: List[BaseException] = []

        def record(index: int, result: RunResult, label: str, seconds: float):
            with lock:
                slots[index] = result
                collected["count"] += 1
                if obs is not None:
                    obs.metrics.counter(
                        "backend.worker_tasks", worker=label
                    ).inc()
                    obs.metrics.counter(
                        "backend.worker_execute_seconds", worker=label
                    ).inc(seconds)
                    obs.metrics.histogram("backend.task_seconds").observe(
                        seconds
                    )
                if on_result is not None:
                    on_result(index, result)

        def drain(connection) -> None:
            while not poisoned:
                try:
                    index, scenario = tasks.get_nowait()
                except queue.Empty:
                    return
                started = time.perf_counter()
                try:
                    reply_index, result = connection.run_task(index, scenario)
                except remote.RemoteTaskError as error:
                    # The task itself failed on a healthy worker;
                    # requeueing it would fail identically everywhere.
                    with lock:
                        poisoned.append(RuntimeError(str(error)))
                    return
                except (ConnectionError, OSError):
                    # Worker lost mid-task: requeue for the survivors.
                    with lock:
                        collected["requeued"] += 1
                        if obs is not None:
                            obs.metrics.counter(
                                "backend.remote_requeued"
                            ).inc()
                    tasks.put((index, scenario))
                    return
                record(
                    reply_index,
                    result,
                    connection.label,
                    time.perf_counter() - started,
                )

        threads = []
        try:
            for connection in connections:
                thread = threading.Thread(
                    target=drain, args=(connection,), daemon=True
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
        finally:
            for connection in connections:
                connection.close()
        self.requeued += collected["requeued"]
        if poisoned:
            raise poisoned[0]

        # Every worker may have died with tasks still queued (or have
        # been requeued onto nobody); the serial fallback finishes the
        # remainder in-process so the round always converges.
        remainder: List[Tuple[int, FaultScenario]] = []
        while True:
            try:
                remainder.append(tasks.get_nowait())
            except queue.Empty:
                break
        if remainder:
            remainder.sort()
            leftover = self._serial_fallback.run_scenarios(
                config, monitor, [scenario for _, scenario in remainder]
            )
            for (index, _), result in zip(remainder, leftover):
                record(index, result, "serial-fallback", 0.0)
        assert all(result is not None for result in slots)
        return slots  # type: ignore[return-value]

    def close(self) -> None:
        """Shut down self-spawned loopback workers (if any)."""
        self._close_loopback()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Backend specs
# ----------------------------------------------------------------------
#: The spec grammar, documented once for every error message.
BACKEND_SPEC_HELP = (
    "'serial', 'pool', 'pool:<workers>', 'remote:<workers>' "
    "(self-spawned loopback fleet) or 'remote:host:port[,host:port...]' "
    "(externally started workers)"
)


def parse_backend_spec(spec: str) -> ExecutionBackend:
    """Build an execution backend from its string spec.

    The spec grammar is the one surface shared by ``Avis(backend=...)``,
    :class:`~repro.engine.campaign.CampaignEngine` and the CLI
    ``--backend`` flag: ``"serial"``, ``"pool"``/``"pool:8"``,
    ``"remote:2"`` (two self-spawned loopback workers) or
    ``"remote:host:port[,host2:port2...]"`` (external workers).
    """
    from repro.engine import remote

    text = spec.strip()
    if text == "serial":
        return SerialBackend()
    if text == "pool":
        return ProcessPoolBackend()
    if text.startswith("pool:"):
        argument = text[len("pool:") :]
        try:
            workers = int(argument)
        except ValueError:
            raise ValueError(
                f"invalid pool spec '{spec}': expected pool:<workers>"
            ) from None
        if workers < 1:
            raise ValueError(f"invalid pool spec '{spec}': workers must be >= 1")
        return ProcessPoolBackend(max_workers=workers)
    if text == "remote":
        return RemoteBackend()
    if text.startswith("remote:"):
        argument = text[len("remote:") :]
        if not argument:
            raise ValueError(f"invalid remote spec '{spec}': {BACKEND_SPEC_HELP}")
        if argument.isdigit():
            workers = int(argument)
            if workers < 1:
                raise ValueError(
                    f"invalid remote spec '{spec}': workers must be >= 1"
                )
            return RemoteBackend(workers=workers)
        try:
            addresses = [
                remote.parse_address(part)
                for part in argument.split(",")
                if part.strip()
            ]
        except ValueError as error:
            raise ValueError(f"invalid remote spec '{spec}': {error}") from None
        if not addresses:
            raise ValueError(f"invalid remote spec '{spec}': {BACKEND_SPEC_HELP}")
        return RemoteBackend(addresses=addresses)
    raise ValueError(f"unknown backend spec '{spec}': {BACKEND_SPEC_HELP}")


def resolve_backend(backend) -> Optional[ExecutionBackend]:
    """Normalise a backend argument: None, a spec string, or an instance.

    Spec strings are the supported surface; passing a ready-made
    :class:`ExecutionBackend` instance still works but is deprecated
    (announced for removal in a future release -- see the README's
    deprecation timeline) because instances cannot cross the submission
    API's process and wire boundaries.
    """
    if backend is None:
        return None
    if isinstance(backend, str):
        return parse_backend_spec(backend)
    if isinstance(backend, ExecutionBackend):
        warnings.warn(
            "passing an ExecutionBackend instance is deprecated; pass a "
            f"backend spec string instead ({BACKEND_SPEC_HELP})",
            DeprecationWarning,
            stacklevel=3,
        )
        return backend
    raise TypeError(
        f"backend must be None, a spec string or an ExecutionBackend, "
        f"got {type(backend).__name__}"
    )
