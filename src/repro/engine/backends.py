"""Execution backends: where a batch of simulations actually runs.

The campaign engine hands a backend an ordered batch of fault scenarios
plus the shared run context (configuration and calibrated invariant
monitor); the backend returns one :class:`~repro.core.runner.RunResult`
per scenario, **in submission order**.  Because every run provisions a
fresh harness and the sensor noise is seeded from the configuration
(``iris_sensor_suite(noise_seed=config.noise_seed)``), a run's outcome
is a pure function of ``(config, scenario)`` -- which is what makes the
process-pool backend bit-identical to the serial one.

Two backends ship with the engine:

* :class:`SerialBackend` -- runs the batch in-process, one scenario at a
  time.  The reference implementation and the fallback everywhere a
  process pool is unavailable.
* :class:`ProcessPoolBackend` -- fans the batch out over a
  ``multiprocessing`` pool using the ``fork`` start method.  Fork (not
  spawn) matters: run configurations carry workload factories that are
  frequently lambdas, which cannot be pickled; with fork the workers
  inherit the parent's context and only the scenarios and results cross
  the process boundary.  On platforms without ``fork`` the backend
  degrades to serial execution instead of failing.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration
from repro.core.runner import RunResult, TestRunner
from repro.hinj.faults import FaultScenario
from repro.obs import runtime as obs_runtime

#: Per-batch context inherited by forked workers (config, monitor).
_WORKER_CONTEXT: Optional[Tuple[RunConfiguration, object]] = None

#: Callback type invoked as each result is collected (scenario index, result).
ProgressCallback = Callable[[int, RunResult], None]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _run_one(scenario: FaultScenario) -> RunResult:
    """Execute one scenario inside a forked worker."""
    assert _WORKER_CONTEXT is not None
    config, monitor = _WORKER_CONTEXT
    return TestRunner(config, monitor=monitor).run(scenario)


def _run_indexed(
    item: Tuple[int, FaultScenario]
) -> Tuple[int, RunResult, Optional[Tuple[int, float, float]]]:
    """Execute one (submission index, scenario) pair inside a worker.

    The index rides along so the parent can collect completions in
    whatever order the pool finishes them and still reorder the batch
    back into submission order.  When an observability runtime is
    installed (workers inherit it at fork), a ``(worker pid, start
    clock, execute seconds)`` triple rides along too -- ``perf_counter``
    is CLOCK_MONOTONIC-backed on Linux and therefore comparable across
    forked processes, which is what lets the parent split queue wait
    from execute time.
    """
    index, scenario = item
    if obs_runtime.current() is None:
        return index, _run_one(scenario), None
    start = time.perf_counter()
    result = _run_one(scenario)
    execute_s = time.perf_counter() - start
    return index, result, (os.getpid(), start, execute_s)


class ExecutionBackend(abc.ABC):
    """Executes batches of independent simulations."""

    #: Human-readable backend name used in summaries and logs.
    name: str = "backend"

    @abc.abstractmethod
    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        """Simulate every scenario; results are in submission order."""

    def close(self) -> None:
        """Release any resources held by the backend."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"


class SerialBackend(ExecutionBackend):
    """Run the batch in-process, one scenario after the other."""

    name = "serial"

    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        runner = TestRunner(config, monitor=monitor)
        obs = obs_runtime.current()
        results: List[RunResult] = []
        for index, scenario in enumerate(scenarios):
            if obs is not None:
                start = time.perf_counter()
            result = runner.run(scenario)
            if obs is not None:
                execute_s = time.perf_counter() - start
                obs.metrics.counter("backend.worker_tasks", worker="serial").inc()
                obs.metrics.counter(
                    "backend.worker_execute_seconds", worker="serial"
                ).inc(execute_s)
                obs.metrics.histogram("backend.task_seconds").observe(execute_s)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Fan a batch out over a forked ``multiprocessing`` pool.

    The pool persists across batches as long as the run context (the
    ``(config, monitor)`` pair, compared by identity) is unchanged --
    a campaign issues many small batches and must not pay a fork per
    batch.  A new context forks a fresh pool, since workers inherit the
    context at fork time.  Call :meth:`close` (or let the backend be
    garbage-collected) to release the workers.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count capped at 4.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = max(1, min(4, os.cpu_count() or 1))
        self._max_workers = max(1, max_workers)
        self._serial_fallback = SerialBackend()
        self._pool = None
        # Strong refs: identity comparison stays valid for the pool's
        # lifetime (an id() could be recycled after garbage collection).
        self._pool_context: Optional[Tuple[RunConfiguration, object]] = None

    @property
    def max_workers(self) -> int:
        """The configured pool size."""
        return self._max_workers

    def _ensure_pool(self, config: RunConfiguration, monitor):
        if self._pool is not None:
            held_config, held_monitor = self._pool_context
            if held_config is config and held_monitor is monitor:
                return self._pool
            self.close()
        global _WORKER_CONTEXT
        _WORKER_CONTEXT = (config, monitor)
        try:
            # The pool is created while the context global is set, so
            # every forked worker inherits (config, monitor) without
            # pickling; only scenarios and results cross the process
            # boundary afterwards.
            self._pool = multiprocessing.get_context("fork").Pool(
                processes=self._max_workers
            )
        finally:
            _WORKER_CONTEXT = None
        self._pool_context = (config, monitor)
        return self._pool

    def run_scenarios(
        self,
        config: RunConfiguration,
        monitor,
        scenarios: Sequence[FaultScenario],
        on_result: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        if (
            not scenarios
            or self._max_workers <= 1
            or not _fork_available()
            # Daemonic pool workers (e.g. inside a campaign-grid shard)
            # cannot spawn children; degrade to serial instead of failing.
            or multiprocessing.current_process().daemon
        ):
            return self._serial_fallback.run_scenarios(
                config, monitor, scenarios, on_result
            )

        pool = self._ensure_pool(config, monitor)
        obs = obs_runtime.current()
        submit_clock = time.perf_counter() if obs is not None else 0.0
        # In-flight scheduling: collect completions as the workers finish
        # them (imap_unordered has no head-of-line blocking, so a slow
        # scenario never stalls the progress callback behind it) and
        # reorder into submission order via the indices that rode along.
        slots: List[Optional[RunResult]] = [None] * len(scenarios)
        for index, result, timing in pool.imap_unordered(
            _run_indexed, list(enumerate(scenarios)), chunksize=1
        ):
            if obs is not None and timing is not None:
                worker_pid, start_clock, execute_s = timing
                worker = f"pid{worker_pid}"
                obs.metrics.counter("backend.worker_tasks", worker=worker).inc()
                obs.metrics.counter(
                    "backend.worker_execute_seconds", worker=worker
                ).inc(execute_s)
                obs.metrics.counter(
                    "backend.worker_queue_wait_seconds", worker=worker
                ).inc(max(start_clock - submit_clock, 0.0))
                obs.metrics.histogram("backend.task_seconds").observe(execute_s)
                # Per-run phase metrics recorded inside the worker died
                # with its registry; re-aggregate them from the flight
                # log that travelled back with the result.
                log = getattr(result, "flight_log", None)
                if log is not None:
                    for phase, seconds in log.phase_seconds.items():
                        obs.metrics.counter(
                            "run.phase_seconds", phase=phase
                        ).inc(seconds)
                    for event in log.events:
                        obs.metrics.counter(
                            "run.flight_events", kind=event.kind
                        ).inc()
            slots[index] = result
            if on_result is not None:
                on_result(index, result)
        assert all(result is not None for result in slots)
        return slots  # type: ignore[return-value]

    def close(self) -> None:
        """Terminate the worker pool (if one is running)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_context = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
