"""The remote execution wire layer: frames, workers, loopback fleets.

The distributed campaign fabric ships ``(context fingerprint,
serialized scenario)`` tasks from a campaign's controller to worker
processes over TCP and collects ``(index, serialized result)`` replies.
This module owns everything below
:class:`repro.engine.backends.RemoteBackend`:

* **Framing** -- every message is one length-prefixed JSON object
  (4-byte big-endian length, then UTF-8 JSON).  JSON keeps the frames
  inspectable on the wire; the simulation objects inside them
  (:class:`~repro.hinj.faults.FaultScenario`,
  :class:`~repro.core.runner.RunResult`) travel as base64-encoded
  pickles in the ``scenario``/``result`` fields, exactly the payloads
  that already cross the fork boundary of the process-pool backend.
* **Handshake** -- a controller opens each worker connection with a
  ``hello`` frame carrying the *context fingerprint*: the cache-layer
  rendering of everything a run's outcome depends on (configuration,
  workload parameters, monitor calibration).  A worker serving a
  different context answers ``reject`` instead of ``welcome``, so a
  drifted worker can never silently contribute results from the wrong
  campaign -- the same self-invalidation idea the result cache's
  version stamps use.
* **Worker server** -- :class:`WorkerServer` runs simulations for one
  ``(config, monitor)`` context, one controller connection at a time
  (parallelism comes from running several workers).  Because a run's
  outcome is a pure function of ``(config, scenario)``, a worker is
  interchangeable with in-process execution -- which is what makes the
  remote backend bit-identical to the serial one.
* **Loopback fleets** -- :func:`spawn_loopback_workers` forks worker
  processes on ephemeral loopback ports.  Fork (not spawn) matters for
  the same reason it does for the pool backend: configurations carry
  lambda workload factories that cannot be pickled, so workers inherit
  the context and only frames cross the process boundary.  External
  workers (other hosts, ``python -m repro.engine worker``) rebuild the
  context from a declarative :class:`~repro.engine.api.CampaignRequest`
  and profile themselves deterministically instead.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import pickle
import socket
import struct
from typing import Iterable, List, Optional, Tuple

from repro.core.config import RunConfiguration
from repro.engine.cache import campaign_fingerprint, config_fingerprint

#: Version of the frame protocol.  A controller and a worker must agree
#: exactly; bumped whenever a frame gains or changes a required field.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's JSON body.  A full fleet RunResult pickles to
#: well under a megabyte; anything larger than this is a corrupt or
#: hostile length prefix, and refusing it beats allocating blindly.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """A peer spoke something other than the frame protocol."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, frame: dict) -> None:
    """Serialize ``frame`` as one length-prefixed JSON message."""
    body = json.dumps(frame, sort_keys=True).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed JSON frame; raises ``ConnectionError``
    when the peer hangs up and :class:`ProtocolError` on garbage."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the protocol cap")
    try:
        frame = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError("frame is not a JSON object")
    return frame


def encode_payload(obj: object) -> str:
    """Render a simulation object for the JSON wire (base64 pickle)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str) -> object:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ----------------------------------------------------------------------
# Context identity
# ----------------------------------------------------------------------
def context_fingerprint(config: RunConfiguration, monitor) -> str:
    """Everything a remote run's outcome depends on, as one string.

    The configuration term is the cache layer's
    :func:`~repro.engine.cache.config_fingerprint`; the workload term is
    :func:`~repro.engine.cache.campaign_fingerprint`, which folds in the
    monitor's calibrated separation threshold -- a worker profiled under
    a different calibration would record different proximity events, so
    it must not serve this campaign.
    """
    workload_term = campaign_fingerprint(config, monitor)
    return config_fingerprint(config, workload_term)


def parse_address(text: str) -> Tuple[str, int]:
    """Parse one ``host:port`` endpoint (IPv4/hostname only)."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected host:port, got '{text}'")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in '{text}'") from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in '{text}'")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_address`, used for worker labels."""
    return f"{address[0]}:{address[1]}"


# ----------------------------------------------------------------------
# Worker server
# ----------------------------------------------------------------------
class WorkerServer:
    """Serves simulations of one ``(config, monitor)`` context over TCP.

    One controller connection is served at a time: the backend opens a
    persistent connection per worker and pipelines tasks over it, so a
    worker process is busy exactly when its controller keeps it busy.
    ``serve_forever`` returns when a controller sends ``shutdown`` (or
    ``max_connections`` controllers have come and gone), which is how
    loopback fleets wind down without signals.
    """

    def __init__(
        self,
        config: RunConfiguration,
        monitor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._config = config
        self._monitor = monitor
        self._fingerprint = context_fingerprint(config, monitor)
        self._listener = socket.create_server((host, port))
        self._runner = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` endpoint."""
        return self._listener.getsockname()[:2]

    @property
    def fingerprint(self) -> str:
        """The context fingerprint this worker answers hellos with."""
        return self._fingerprint

    def close(self) -> None:
        self._listener.close()

    def serve_forever(self) -> None:
        """Accept controllers until one asks for ``shutdown``."""
        try:
            while True:
                try:
                    connection, _ = self._listener.accept()
                except OSError:
                    return
                try:
                    if not self._serve_connection(connection):
                        return
                finally:
                    try:
                        connection.close()
                    except OSError:
                        pass
        finally:
            self.close()

    def _serve_connection(self, connection: socket.socket) -> bool:
        """Serve one controller; False means shutdown was requested."""
        try:
            hello = recv_frame(connection)
        except (ConnectionError, OSError):
            return True
        if (
            hello.get("type") != "hello"
            or hello.get("protocol") != PROTOCOL_VERSION
        ):
            try:
                send_frame(
                    connection,
                    {"type": "reject", "reason": "protocol mismatch"},
                )
            except OSError:
                pass
            return True
        if hello.get("fingerprint") != self._fingerprint:
            try:
                send_frame(
                    connection,
                    {
                        "type": "reject",
                        "reason": "context fingerprint mismatch",
                        "fingerprint": self._fingerprint,
                    },
                )
            except OSError:
                pass
            return True
        try:
            send_frame(
                connection,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "fingerprint": self._fingerprint,
                },
            )
        except OSError:
            return True
        while True:
            try:
                frame = recv_frame(connection)
            except (ConnectionError, OSError):
                return True  # controller went away; await the next one
            kind = frame.get("type")
            if kind == "shutdown":
                return False
            if kind != "task":
                try:
                    send_frame(
                        connection,
                        {"type": "error", "reason": f"unknown frame '{kind}'"},
                    )
                except OSError:
                    return True
                continue
            reply = self._run_task(frame)
            try:
                send_frame(connection, reply)
            except OSError:
                return True

    def _run_task(self, frame: dict) -> dict:
        index = frame.get("index")
        try:
            scenario = decode_payload(frame["scenario"])
        except Exception as error:  # corrupt payload must not kill the worker
            return {
                "type": "error",
                "index": index,
                "reason": f"undecodable scenario: {error}",
            }
        if self._runner is None:
            # One runner per worker lifetime, exactly like SerialBackend
            # holds one per batch -- provisioning is per-run regardless.
            from repro.core.runner import TestRunner

            self._runner = TestRunner(self._config, monitor=self._monitor)
        try:
            result = self._runner.run(scenario)
        except Exception as error:
            return {
                "type": "error",
                "index": index,
                "reason": f"simulation failed: {error}",
            }
        return {
            "type": "result",
            "index": index,
            "result": encode_payload(result),
        }


def _serve_in_child(config, monitor, host, port_pipe) -> None:
    """Fork target: bind, report the ephemeral port, serve until shutdown."""
    server = WorkerServer(config, monitor, host=host, port=0)
    try:
        port_pipe.send(server.address[1])
        port_pipe.close()
        server.serve_forever()
    finally:
        server.close()


class LoopbackWorker:
    """One forked worker process serving a loopback TCP endpoint."""

    def __init__(self, process, address: Tuple[str, int]) -> None:
        self.process = process
        self.address = address

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-kill the worker (the worker-loss tests use this)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)

    def close(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=5.0)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def spawn_loopback_workers(
    config: RunConfiguration, monitor, count: int, host: str = "127.0.0.1"
) -> List[LoopbackWorker]:
    """Fork ``count`` worker processes serving ephemeral loopback ports.

    The children inherit ``(config, monitor)`` at fork time (lambda
    workload factories never cross a pickle boundary) and report their
    bound port back over a pipe before entering the serve loop, so the
    returned handles are immediately connectable.
    """
    if count < 1:
        raise ValueError("need at least one worker")
    if not fork_available():
        raise RuntimeError("loopback workers need the fork start method")
    context = multiprocessing.get_context("fork")
    workers: List[LoopbackWorker] = []
    try:
        for _ in range(count):
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_serve_in_child,
                args=(config, monitor, host, sender),
                daemon=True,
            )
            process.start()
            sender.close()
            if not receiver.poll(timeout=30.0):
                raise RuntimeError("loopback worker did not report its port")
            port = receiver.recv()
            receiver.close()
            workers.append(LoopbackWorker(process, (host, port)))
    except Exception:
        for worker in workers:
            worker.close()
        raise
    return workers


# ----------------------------------------------------------------------
# Controller-side connection
# ----------------------------------------------------------------------
class WorkerConnection:
    """A controller's persistent, handshaken link to one worker."""

    def __init__(
        self,
        address: Tuple[str, int],
        fingerprint: str,
        connect_timeout: float = 10.0,
        task_timeout: Optional[float] = 600.0,
    ) -> None:
        self.address = address
        self.label = format_address(address)
        self._task_timeout = task_timeout
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        try:
            send_frame(
                self._sock,
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "fingerprint": fingerprint,
                },
            )
            welcome = recv_frame(self._sock)
            if welcome.get("type") != "welcome":
                raise ProtocolError(
                    f"worker {self.label} rejected the handshake: "
                    f"{welcome.get('reason', 'no reason given')}"
                )
        except BaseException:
            self._sock.close()
            raise

    def run_task(self, index: int, scenario) -> Tuple[int, object]:
        """Ship one task frame and block for its result frame."""
        self._sock.settimeout(self._task_timeout)
        send_frame(
            self._sock,
            {
                "type": "task",
                "index": index,
                "scenario": encode_payload(scenario),
            },
        )
        reply = recv_frame(self._sock)
        kind = reply.get("type")
        if kind == "result":
            return reply["index"], decode_payload(reply["result"])
        if kind == "error":
            raise RemoteTaskError(reply.get("reason", "unknown worker error"))
        raise ProtocolError(f"unexpected reply frame '{kind}'")

    def shutdown(self) -> None:
        """Politely ask the worker process to exit."""
        try:
            send_frame(self._sock, {"type": "shutdown"})
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class RemoteTaskError(RuntimeError):
    """A worker executed a task and reported a failure.

    Distinct from connection loss: the worker is healthy and the task
    itself is poisoned, so requeueing it elsewhere would fail the same
    way.  The backend surfaces it instead of retrying forever.
    """


def connect_workers(
    addresses: Iterable[Tuple[str, int]],
    fingerprint: str,
    connect_timeout: float = 10.0,
    task_timeout: Optional[float] = 600.0,
    retries: int = 3,
    retry_delay_s: float = 0.2,
) -> Tuple[List[WorkerConnection], List[Tuple[Tuple[str, int], str]]]:
    """Handshake every address; returns ``(connections, failures)``.

    Connection-refused and timeouts are retried ``retries`` times with a
    linear backoff (workers may still be binding); a handshake
    *rejection* is never retried -- the worker is alive and serving a
    different context, so waiting cannot help.
    """
    import time as _time

    connections: List[WorkerConnection] = []
    failures: List[Tuple[Tuple[str, int], str]] = []
    for address in addresses:
        last_error = "unreachable"
        for attempt in range(max(1, retries)):
            try:
                connections.append(
                    WorkerConnection(
                        address,
                        fingerprint,
                        connect_timeout=connect_timeout,
                        task_timeout=task_timeout,
                    )
                )
                break
            except ProtocolError as error:
                last_error = str(error)
                failures.append((address, last_error))
                break
            except (OSError, ConnectionError) as error:
                last_error = str(error) or type(error).__name__
                if attempt + 1 < max(1, retries):
                    _time.sleep(retry_delay_s * (attempt + 1))
        else:
            failures.append((address, last_error))
    return connections, failures
