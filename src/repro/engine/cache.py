"""Content-addressed result caching for repeated campaigns.

Every simulation in this reproduction is a pure function of its inputs:
the run configuration (firmware flavour and parameters, workload,
airframe, time-step, bug set) plus the fault scenario and the sensor
noise seed fully determine the recorded :class:`~repro.core.runner.RunResult`.
That makes results content-addressable: the cache key is a SHA-256 over
a canonical rendering of ``(firmware, workload, scenario, noise_seed,
params)``, and any campaign that would re-simulate an already-explored
scenario -- ``Avis.compare()`` running several strategies over the same
fault space, a re-run of the benchmark matrix, a campaign-grid shard --
can reuse the stored result instead.

Budget semantics: a cache hit still *counts* as a simulation (the
session charges the simulation cost and the result appears in the
campaign), so warm- and cold-cache campaigns report identical Table
III/IV/V numbers; the cache only removes wall-clock work.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import tempfile
from typing import Dict, Optional

from repro.core.config import RunConfiguration
from repro.core.runner import RunResult
from repro.hinj.faults import FaultScenario


def config_fingerprint(config: RunConfiguration, workload_name: str) -> str:
    """A canonical string identifying everything a run's outcome depends on.

    ``workload_name`` is passed separately because the configuration only
    holds an opaque factory; the workload's display name (plus its
    parameters as rendered by the factory's product) is the stable part.
    """
    parts = [
        f"firmware={config.firmware_name}",
        f"workload={workload_name}",
        f"airframe={config.airframe!r}",
        f"params={config.firmware_params!r}",
        f"dt={config.dt!r}",
        f"max_sim_time_s={config.max_sim_time_s!r}",
        f"sample_interval_steps={config.sample_interval_steps!r}",
        f"noise_seed={config.noise_seed!r}",
        f"reinserted={sorted(config.reinserted_bugs)!r}",
        f"disabled={sorted(config.disabled_bugs)!r}",
        f"stop_on_unsafe={config.stop_on_unsafe!r}",
    ]
    return "|".join(parts)


def _canonical(value) -> str:
    """A deterministic rendering of a workload parameter.

    Scalars and containers render structurally.  Anything else falls
    back to ``repr`` prefixed with its type -- if that repr embeds a
    memory address the key becomes process-local, which degrades the
    cache to misses (safe) rather than risking a false hit.
    """
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in value)) + "}"
    if isinstance(value, dict):
        rendered = sorted(
            f"{_canonical(key)}:{_canonical(item)}" for key, item in value.items()
        )
        return "{" + ",".join(rendered) + "}"
    return f"<{type(value).__qualname__}:{value!r}>"


def workload_fingerprint(config: RunConfiguration) -> str:
    """Identify the configured workload *including its parameters*.

    The configuration only holds an opaque factory, and display names do
    not encode parameters (a 10 m and a 20 m box workload share one), so
    this instantiates a throwaway workload and renders every public
    attribute alongside the name.
    """
    workload = config.workload_factory()
    params = {
        key: _canonical(value)
        for key, value in sorted(vars(workload).items())
        if not key.startswith("_")
    }
    return f"{workload.display_name}{params!r}"


def scenario_fingerprint(scenario: FaultScenario) -> str:
    """A canonical string for a fault scenario (sorted fault tuples)."""
    return ";".join(
        f"{fault.sensor_id.label}@{fault.start_time!r}" for fault in scenario
    )


def scenario_key(
    config: RunConfiguration, workload_name: str, scenario: FaultScenario
) -> str:
    """The content address of one simulation."""
    payload = config_fingerprint(config, workload_name) + "||" + scenario_fingerprint(
        scenario
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def adapt_cached_result(result: RunResult, monitor=None) -> RunResult:
    """Prepare a cached result for use in a (possibly different) campaign.

    Returns a shallow copy so campaigns never share mutable state, and
    re-evaluates the invariant monitor when one is supplied -- the
    monitor is calibrated deterministically from the same configuration,
    so this reproduces the verdict a fresh simulation would have had.
    """
    adapted = copy.copy(result)
    if monitor is not None:
        adapted.unsafe_conditions = monitor.evaluate(adapted)
    else:
        adapted.unsafe_conditions = list(result.unsafe_conditions)
    return adapted


class ResultCache:
    """In-memory (and optionally on-disk) store of simulated run results.

    Parameters
    ----------
    directory:
        When given, every stored result is also pickled to
        ``<directory>/<key>.pkl`` and lookups fall back to disk, so the
        cache survives across processes and across campaign-grid runs.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._memory: Dict[str, RunResult] = {}
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------
    key_for = staticmethod(scenario_key)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self._directory is not None and os.path.exists(self._path(key))
        )

    def _path(self, key: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"{key}.pkl")

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or None on a miss."""
        result = self._memory.get(key)
        if result is None and self._directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        result = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError):
                    result = None
                if result is not None:
                    self._memory[key] = result
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (last write wins)."""
        self._memory[key] = result
        if self._directory is not None:
            # Write-then-rename so concurrent grid shards never observe a
            # partially written pickle.
            fd, tmp_path = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle)
                os.replace(tmp_path, self._path(key))
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the in-memory entry count."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._memory)}
