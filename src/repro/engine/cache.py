"""Content-addressed result caching for repeated campaigns.

Every simulation in this reproduction is a pure function of its inputs:
the run configuration (firmware flavour and parameters, workload,
airframe, time-step, bug set) plus the fault scenario and the sensor
noise seed fully determine the recorded :class:`~repro.core.runner.RunResult`.
That makes results content-addressable: the cache key is a SHA-256 over
a canonical rendering of ``(firmware, workload, scenario, noise_seed,
params)``, and any campaign that would re-simulate an already-explored
scenario -- ``Avis.compare()`` running several strategies over the same
fault space, a re-run of the benchmark matrix, a campaign-grid shard --
can reuse the stored result instead.

Budget semantics: a cache hit still *counts* as a simulation (the
session charges the simulation cost and the result appears in the
campaign), so warm- and cold-cache campaigns report identical Table
III/IV/V numbers; the cache only removes wall-clock work.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import tempfile
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.core.config import RunConfiguration
from repro.core.runner import RunResult
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.obs import runtime as obs_runtime
from repro.sim.environment import default_environment

#: Version of the cached-result schema.  Bumped whenever the recorded
#: :class:`RunResult` payload or the fingerprint grammar changes shape
#: (the heterogeneous-fleet refactor added per-vehicle specs and
#: traffic-fault terms; v3 added the non-default environment term), so
#: cache directories written by an older engine self-invalidate instead
#: of serving structurally stale hits.
CACHE_SCHEMA_VERSION = 3


def config_fingerprint(config: RunConfiguration, workload_name: str) -> str:
    """A canonical string identifying everything a run's outcome depends on.

    ``workload_name`` is passed separately because the configuration only
    holds an opaque factory; the workload's display name (plus its
    parameters as rendered by the factory's product) is the stable part.
    """
    parts = [
        f"firmware={config.firmware_name}",
        f"workload={workload_name}",
        f"airframe={config.airframe!r}",
        f"params={config.firmware_params!r}",
        f"dt={config.dt!r}",
        f"max_sim_time_s={config.max_sim_time_s!r}",
        f"sample_interval_steps={config.sample_interval_steps!r}",
        f"noise_seed={config.noise_seed!r}",
        f"reinserted={sorted(config.reinserted_bugs)!r}",
        f"disabled={sorted(config.disabled_bugs)!r}",
        f"stop_on_unsafe={config.stop_on_unsafe!r}",
    ]
    fleet_size = getattr(config, "fleet_size", 1)
    if fleet_size != 1:
        # Only fleet runs render fleet terms: classic (fleet size 1)
        # fingerprints -- and therefore cache keys -- keep the exact
        # pre-fleet key format.  (Pre-upgrade cache *directories* are
        # still purged once by the version-stamp check, which cannot
        # attribute unstamped entries to a bug registry.)
        parts.append(f"fleet_size={fleet_size!r}")
        parts.append(f"fleet_pad_spacing_m={config.fleet_pad_spacing_m!r}")
        # Heterogeneous fleets render one term per vehicle; homogeneous
        # fleets -- scalar aliases or explicit identical specs -- omit
        # them, keeping the exact pre-VehicleSpec key format.
        if getattr(config, "is_heterogeneous", False):
            rendered = ";".join(
                f"v{index}:firmware={spec.firmware_name},"
                f"airframe={spec.airframe!r},params={spec.firmware_params!r}"
                for index, spec in enumerate(config.vehicle_specs)
            )
            parts.append(f"vehicles=[{rendered}]")
        # Traffic-channel timing shapes every beacon a fleet run records;
        # render it only when it deviates from the dataclass defaults so
        # existing fleet keys are unperturbed.
        fields = RunConfiguration.__dataclass_fields__
        defaults = (
            fields["traffic_beacon_interval_s"].default,
            fields["traffic_latency_s"].default,
        )
        interval = getattr(config, "traffic_beacon_interval_s", defaults[0])
        latency = getattr(config, "traffic_latency_s", defaults[1])
        if (interval, latency) != defaults:
            parts.append(f"traffic={interval!r}/{latency!r}")
    # The stepper term appears only for modes that can change what a run
    # records.  "soa" deliberately shares keys with "reference": the two
    # are pinned bit-identical (states, events, traces) by the fast-core
    # suite, so a cache entry is equally valid under either -- and the
    # term's absence keeps every pre-stepper key format unperturbed.
    stepper = getattr(config, "stepper", "reference")
    if stepper not in ("reference", "soa"):
        parts.append(f"stepper={stepper}")
    # The environment shapes every trajectory (wind, obstacles, fences,
    # ground altitude), so a non-default environment must key its own
    # cache entries.  The term is emitted only when the factory deviates
    # from ``default_environment`` so every historical key format is
    # unperturbed; the factory's *product* is rendered (sorted fields)
    # because factories themselves have no stable identity.
    environment_factory = getattr(
        config, "environment_factory", default_environment
    )
    if environment_factory is not default_environment:
        environment = environment_factory()
        rendered = ",".join(
            f"{name}={_canonical(value)}"
            for name, value in sorted(vars(environment).items())
        )
        parts.append(f"environment=[{rendered}]")
    return "|".join(parts)


def _canonical(value) -> str:
    """A deterministic rendering of a workload parameter.

    Scalars and containers render structurally.  Anything else falls
    back to ``repr`` prefixed with its type -- if that repr embeds a
    memory address the key becomes process-local, which degrades the
    cache to misses (safe) rather than risking a false hit.
    """
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in value)) + "}"
    if isinstance(value, dict):
        rendered = sorted(
            f"{_canonical(key)}:{_canonical(item)}" for key, item in value.items()
        )
        return "{" + ",".join(rendered) + "}"
    return f"<{type(value).__qualname__}:{value!r}>"


def workload_fingerprint(config: RunConfiguration) -> str:
    """Identify the configured workload *including its parameters*.

    The configuration only holds an opaque factory, and display names do
    not encode parameters (a 10 m and a 20 m box workload share one), so
    this instantiates a throwaway workload and renders every public
    attribute alongside the name.
    """
    workload = config.workload_factory()
    params = {
        key: _canonical(value)
        for key, value in sorted(vars(workload).items())
        if not key.startswith("_")
    }
    return f"{workload.display_name}{params!r}"


def campaign_fingerprint(config: RunConfiguration, monitor=None) -> str:
    """The workload term of a cache key, including monitor calibration.

    For fleet campaigns the recorded proximity events depend on the
    monitor's calibrated separation threshold (the simulator filters
    conflicts below it at run time), so results simulated under
    different calibrations -- e.g. grid cells with different
    ``profiling_runs`` -- must not share cache entries.  Classic
    campaigns have no threshold and keep the plain workload fingerprint,
    i.e. the exact pre-fleet key format.
    """
    fingerprint = workload_fingerprint(config)
    threshold = getattr(monitor, "separation_threshold_m", None)
    if threshold is not None:
        fingerprint += f"|separation_threshold={threshold!r}"
    return fingerprint


def scenario_fingerprint(scenario: FaultScenario) -> str:
    """A canonical string for a fault scenario (sorted fault tuples).

    Sensor faults render exactly as before; coordination faults render
    through their vehicle-namespaced labels (``traffic:v1:dropout``,
    including the delay parameter for delayed beacons), so traffic-fault
    scenarios can never collide with sensor-fault cache entries.  A
    recovery window renders as a ``~duration`` term -- emitted only for
    intermittent faults, so every latched (default) scenario keeps its
    exact pre-window fingerprint and existing cache directories stay
    valid.
    """
    rendered = []
    for fault in scenario:
        label = (
            fault.sensor_id.label if isinstance(fault, FaultSpec) else fault.label
        )
        term = f"{label}@{fault.start_time!r}"
        if fault.duration_s is not None:
            term += f"~{fault.duration_s!r}"
        rendered.append(term)
    return ";".join(rendered)


def scenario_key(
    config: RunConfiguration, workload_name: str, scenario: FaultScenario
) -> str:
    """The content address of one simulation."""
    payload = config_fingerprint(config, workload_name) + "||" + scenario_fingerprint(
        scenario
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def bug_registry_stamp() -> str:
    """A version stamp over the shipped firmware bug registries.

    Cached results embed the behaviour of the firmware's bug set: adding,
    removing or editing a bug descriptor changes what a simulation would
    record, so a directory cache written under a different registry is
    stale.  The stamp is a SHA-256 over the canonical rendering of every
    descriptor in both shipped flavours -- any registry edit changes it,
    and :class:`ResultCache` then invalidates the directory's entries.

    The stamp also folds in :data:`CACHE_SCHEMA_VERSION`: schema-shape
    changes (per-vehicle specs, traffic faults) invalidate pre-refactor
    directories even when the bug registries are untouched.
    """
    from repro.firmware.bugs import ardupilot_bug_registry, px4_bug_registry

    parts = [f"schema:{CACHE_SCHEMA_VERSION}"]
    for flavour, registry in (
        ("ardupilot", ardupilot_bug_registry()),
        ("px4", px4_bug_registry()),
    ):
        for descriptor in registry.descriptors:
            parts.append(f"{flavour}:{descriptor!r}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def adapt_cached_result(result: RunResult, monitor=None) -> RunResult:
    """Prepare a cached result for use in a (possibly different) campaign.

    Returns a shallow copy so campaigns never share mutable state, and
    re-evaluates the invariant monitor when one is supplied -- the
    monitor is calibrated deterministically from the same configuration,
    so this reproduces the verdict a fresh simulation would have had.
    """
    adapted = copy.copy(result)
    if monitor is not None:
        adapted.unsafe_conditions = monitor.evaluate(adapted)
    else:
        adapted.unsafe_conditions = list(result.unsafe_conditions)
    return adapted


@runtime_checkable
class CacheStore(Protocol):
    """The store contract behind the engine's result caching.

    :class:`ResultCache` (in-process, optionally directory-backed) and
    :class:`repro.engine.cache_remote.RemoteCacheStore` (a socket client
    of a network-shared store) both satisfy it, so the campaign engine,
    the exploration session and the orchestrator never care where a
    result is actually held.  Keys are the content addresses produced by
    :func:`scenario_key`; because the bug-registry/schema version stamps
    are folded into every *directory* store, a shared store serves only
    results the current engine could have produced itself.
    """

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or None on a miss."""
        ...

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (last write wins)."""
        ...

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss (and store-specific) counters."""
        ...


class ResultCache:
    """In-memory (and optionally on-disk) store of simulated run results.

    Parameters
    ----------
    directory:
        When given, every stored result is also pickled to
        ``<directory>/<key>.pkl`` and lookups fall back to disk, so the
        cache survives across processes and across campaign-grid runs.
    max_entries:
        Cross-run GC: cap on the number of ``.pkl`` entries kept in the
        directory.  When a put pushes the directory over the cap, the
        least recently used entries (by file modification time, which
        :meth:`get` refreshes on disk hits) are deleted.  ``None`` (the
        default) keeps the directory unbounded, as before.
    max_bytes:
        Cross-run GC: cap on the total size of the directory's ``.pkl``
        entries, enforced the same way.

    A directory cache is stamped with the firmware bug registry version
    (see :func:`bug_registry_stamp`): opening a directory written under
    a different registry discards its entries, so stale results
    self-invalidate when the bug set changes.
    """

    #: Name of the version-stamp file kept next to the ``.pkl`` entries.
    VERSION_FILENAME = "CACHE_VERSION"

    #: Puts between directory rescans of the GC totals (bounds how far
    #: concurrent writers sharing one directory can exceed the caps).
    RESCAN_INTERVAL = 64

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self._memory: Dict[str, RunResult] = {}
        self._directory = directory
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._gc_enabled = max_entries is not None or max_bytes is not None
        # Running totals of the directory's .pkl entries, maintained so a
        # put only rescans the directory when a cap is actually crossed.
        # The totals are per-process, so concurrent grid shards sharing a
        # directory could drift past the caps unnoticed; a periodic
        # rescan (every RESCAN_INTERVAL puts) bounds that overshoot.
        self._entry_count = 0
        self._entry_bytes = 0
        self._puts_since_rescan = 0
        self.evictions = 0
        self.invalidated = 0
        self.corrupt = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._sweep_orphan_tmp()
            self._check_version_stamp()
            if self._gc_enabled:
                self._rescan_totals()
                self._enforce_limits()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Version stamping
    # ------------------------------------------------------------------
    def _version_path(self) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, self.VERSION_FILENAME)

    def _check_version_stamp(self) -> None:
        """Discard on-disk entries written under a different bug registry.

        A directory holding entries but no stamp at all is also purged:
        without a stamp there is no way to tell which registry produced
        those results, and serving potentially-stale hits silently is
        worse than re-simulating once.
        """
        stamp = bug_registry_stamp()
        path = self._version_path()
        stored = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stored = handle.read().strip()
        except OSError:
            stored = None
        if stored != stamp:
            purged = self._purge_entries()
            self.invalidated += purged
            obs = obs_runtime.current()
            if obs is not None and purged:
                obs.metrics.counter("cache.invalidated").inc(purged)
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(stamp + "\n")
            except OSError:
                pass

    def _sweep_orphan_tmp(self) -> None:
        """Delete ``.tmp`` spool files a crashed writer left behind.

        Every put writes to a ``tempfile.mkstemp`` spool and atomically
        renames it over the entry, so a writer that dies mid-write can
        only leak a ``.tmp`` file -- never a torn ``.pkl``.  Sweeping
        them at open keeps a long-lived shared directory from
        accumulating dead spools.  In the unlikely race that this sweep
        removes a *live* writer's spool, that writer's rename fails with
        an OSError that :meth:`put` already tolerates (the entry simply
        stays a miss), so the sweep can never corrupt an entry.
        """
        assert self._directory is not None
        try:
            names = sorted(os.listdir(self._directory))
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self._directory, name))
                except OSError:
                    pass

    def _purge_entries(self) -> int:
        """Delete every ``.pkl`` entry in the directory; returns the count."""
        purged = 0
        for name in self._entry_names():
            try:
                os.unlink(os.path.join(self._directory, name))
                purged += 1
            except OSError:
                pass
        return purged

    def _entry_names(self) -> List[str]:
        assert self._directory is not None
        try:
            return sorted(
                name
                for name in os.listdir(self._directory)
                if name.endswith(".pkl")
            )
        except OSError:
            return []

    # ------------------------------------------------------------------
    # Cross-run GC
    # ------------------------------------------------------------------
    def _rescan_totals(self) -> None:
        """Re-seed the running entry/byte totals from the directory."""
        count = 0
        total = 0
        for name in self._entry_names():
            try:
                total += os.stat(os.path.join(self._directory, name)).st_size
            except OSError:
                continue
            count += 1
        self._entry_count = count
        self._entry_bytes = total

    def _over_limits(self) -> bool:
        if self._max_entries is not None and self._entry_count > self._max_entries:
            return True
        return self._max_bytes is not None and self._entry_bytes > self._max_bytes

    def _enforce_limits(self) -> None:
        """Evict least-recently-used disk entries beyond the limits.

        The full directory is only walked when the running totals say a
        cap has actually been crossed, so an in-budget put stays O(1).
        """
        if self._directory is None or not self._gc_enabled:
            return
        if not self._over_limits():
            return
        entries = []
        total_bytes = 0
        for name in self._entry_names():
            path = os.path.join(self._directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, name, stat.st_size))
            total_bytes += stat.st_size
        entries.sort()  # oldest first
        over_entries = (
            len(entries) - self._max_entries if self._max_entries is not None else 0
        )
        while entries and (
            over_entries > 0
            or (self._max_bytes is not None and total_bytes > self._max_bytes)
        ):
            _, name, size = entries.pop(0)
            try:
                os.unlink(os.path.join(self._directory, name))
            except OSError:
                continue
            self.evictions += 1
            obs = obs_runtime.current()
            if obs is not None:
                obs.metrics.counter("cache.evictions").inc()
            total_bytes -= size
            over_entries -= 1
            self._memory.pop(name[: -len(".pkl")], None)
        self._entry_count = len(entries)
        self._entry_bytes = total_bytes

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------
    key_for = staticmethod(scenario_key)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def keys(self) -> List[str]:
        """Every key with an in-memory entry, sorted.

        The determinism tests compare a batched campaign's cache keys
        against a sequential one's -- content-addressed keys make that a
        direct statement of "the same (config, scenario) pairs ran".
        """
        return sorted(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self._directory is not None and os.path.exists(self._path(key))
        )

    def _path(self, key: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"{key}.pkl")

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or None on a miss."""
        result = self._memory.get(key)
        if result is None and self._directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        result = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                    # A torn or stale entry (e.g. written by a crashed
                    # non-atomic writer from an older engine).  Unlink it
                    # so ``key in cache`` stops reporting a phantom entry
                    # and the next put rewrites it cleanly.
                    result = None
                    self.corrupt += 1
                    obs = obs_runtime.current()
                    if obs is not None:
                        obs.metrics.counter("cache.corrupt").inc()
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                if result is not None:
                    self._memory[key] = result
        obs = obs_runtime.current()
        if result is None:
            self.misses += 1
            if obs is not None:
                obs.metrics.counter("cache.misses").inc()
            return None
        if self._directory is not None and self._gc_enabled:
            try:
                # Refresh the entry's mtime (memory hits included) so the
                # cross-run GC evicts least-recently-used entries first.
                os.utime(self._path(key))
            except OSError:
                pass
        self.hits += 1
        if obs is not None:
            obs.metrics.counter("cache.hits").inc()
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (last write wins)."""
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter("cache.puts").inc()
        self._memory[key] = result
        if self._directory is not None:
            path = self._path(key)
            old_size = None
            if self._gc_enabled:
                try:
                    old_size = os.stat(path).st_size
                except OSError:
                    old_size = None
            # Write-then-rename so concurrent grid shards never observe a
            # partially written pickle.
            fd, tmp_path = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle)
                os.replace(tmp_path, path)
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            else:
                if self._gc_enabled:
                    try:
                        new_size = os.stat(path).st_size
                    except OSError:
                        new_size = 0
                    if old_size is None:
                        self._entry_count += 1
                        self._entry_bytes += new_size
                    else:
                        self._entry_bytes += new_size - old_size
                    self._puts_since_rescan += 1
                    if self._puts_since_rescan >= self.RESCAN_INTERVAL:
                        self._puts_since_rescan = 0
                        self._rescan_totals()
                    self._enforce_limits()

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/GC counters plus the in-memory entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memory),
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "corrupt": self.corrupt,
        }
