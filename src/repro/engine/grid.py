"""Campaign grids: sharding a campaign matrix across worker processes.

A *grid* is the (firmware x workload x strategy x budget) matrix behind
the paper's evaluation tables: Table III/IV run every strategy on every
firmware, Table V runs two strategies per re-inserted bug.  Each cell is
one full campaign -- profile the fault-free mission, calibrate the
monitor, run the strategy to budget exhaustion -- and cells are
completely independent, so the grid shards them across a forked worker
pool, one campaign per worker at a time.

Inside a grid worker every campaign uses the :class:`SerialBackend`
(nesting process pools inside pool workers is not supported by
``multiprocessing`` daemonic processes, and cell-level sharding already
saturates the machine).  Because each cell is deterministic, a sharded
grid produces exactly the results of the equivalent sequential loop.

Long grids can stream every finished cell to a JSONL file
(``run(stream_path=...)``); a killed run then resumes by loading the
stream with :func:`load_completed_cells` and passing the mapping back as
``run(completed=...)`` -- already-finished cells are skipped and their
streamed summaries are merged into the final grid summary.  The CLI
exposes this as ``--stream`` / ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration
from repro.engine.backends import _fork_available
from repro.engine.cache import (
    ResultCache,
    config_fingerprint,
    workload_fingerprint,
)
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Observability, observed

#: Version stamped into every streamed cell record (the ``schema``
#: field).  Version 1 is the implicit schema of records written before
#: the field existed; :func:`validate_stream_record` accepts both, and
#: resume matching stays fingerprint-based, so old stream files keep
#: resuming.  Bump this when a record key changes meaning or type.
STREAM_SCHEMA_VERSION = 2


@dataclass
class GridCell:
    """One campaign of the matrix.

    ``strategy_factory`` (rather than a strategy instance) because
    strategies carry per-campaign state (RNG position, enumeration
    cursors); every cell must start from a fresh instance.
    """

    cell_id: str
    config: RunConfiguration
    strategy_factory: Callable[[], object]
    budget_units: float = 60.0
    profiling_runs: int = 2
    simulation_cost: float = 1.0
    labelling_cost: float = 0.15
    #: Open the inter-vehicle traffic channel to injection: the cell's
    #: session gets the coordination fault space (fleet cells only).
    traffic_faults: bool = False
    #: Run the cell under a fresh observability runtime and return its
    #: metrics snapshot and trace events with the campaign.  Never part
    #: of :func:`cell_fingerprint` -- observing a cell cannot change its
    #: outcome, so it must not invalidate resumable stream records.
    observe: bool = False
    #: Execution backend spec for the cell's campaign engine ("serial",
    #: "pool[:N]", "remote:...").  Like ``observe``, never part of
    #: :func:`cell_fingerprint`: backends are bit-identical by contract,
    #: so where a cell ran must not invalidate its stream record.
    backend_spec: str = "serial"
    #: Result-cache spec: None (private in-memory cache), a directory
    #: path, or ``"remote:host:port"`` naming a shared cache server.
    #: Never part of the fingerprint -- caching cannot change outcomes.
    cache_spec: Optional[str] = None


def cell_fingerprint(cell: GridCell) -> str:
    """A short content hash of everything that shapes a cell's outcome.

    Streamed alongside each finished cell so a ``--resume`` only skips a
    cell when the stored result really came from the same configuration
    -- the cell id alone omits parameters like the workload geometry.
    """
    terms = [
        config_fingerprint(cell.config, workload_fingerprint(cell.config)),
        f"budget={cell.budget_units!r}",
        f"profiling={cell.profiling_runs!r}",
        f"costs={cell.simulation_cost!r}/{cell.labelling_cost!r}",
    ]
    if cell.traffic_faults:
        # Rendered only when enabled, so pre-traffic stream files keep
        # resuming their cells.
        terms.append("traffic_faults=True")
    payload = "|".join(terms)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def summarize_campaign(
    cell_id: str,
    campaign: CampaignResult,
    wall_seconds: Optional[float] = None,
    fleet_size: int = 1,
    fingerprint: Optional[str] = None,
    vehicles: Optional[List[str]] = None,
    engine_stats: Optional[dict] = None,
    cache_stats: Optional[dict] = None,
    metrics: Optional[dict] = None,
) -> dict:
    """The JSON-serialisable summary of one finished grid cell.

    ``wall_s`` duplicates ``wall_seconds`` under the streamed-record
    schema name; resume matching is fingerprint-based, so stream files
    written before (or after) either key exist stay resumable.
    """
    summary = {
        "schema": STREAM_SCHEMA_VERSION,
        "cell": cell_id,
        "fingerprint": fingerprint,
        "firmware": campaign.firmware_name,
        "workload": campaign.workload_name,
        "strategy": campaign.strategy_name,
        "fleet_size": fleet_size,
        "simulations": campaign.simulations,
        "labels": campaign.labels,
        "budget_spent": campaign.budget_spent,
        "unsafe_scenarios": campaign.unsafe_scenario_count,
        "unsafe_conditions": campaign.unsafe_condition_count,
        "triggered_bugs": sorted(campaign.triggered_bug_ids),
        "per_mode": campaign.per_mode_counts,
        "efficiency": campaign.efficiency,
        "wall_seconds": wall_seconds,
        "wall_s": wall_seconds,
    }
    if vehicles is not None:
        summary["vehicles"] = vehicles
    if engine_stats is not None:
        summary["engine"] = engine_stats
    if cache_stats is not None:
        summary["cache"] = cache_stats
    if metrics is not None:
        summary["metrics"] = metrics
    return summary


#: Keys every streamed cell record must carry, with the types a
#: well-formed value may take.  ``schema``-less records predate the
#: version field (schema 1) and are still valid -- resume matching is
#: fingerprint-based, not schema-based.
_RECORD_REQUIRED = {
    "cell": (str,),
    "fingerprint": (str,),
    "firmware": (str,),
    "workload": (str,),
    "strategy": (str,),
    "simulations": (int,),
    "budget_spent": (int, float),
    "unsafe_scenarios": (int,),
    "triggered_bugs": (list,),
}


def validate_stream_record(record: object) -> List[str]:
    """Problems with one streamed cell record (empty when valid).

    Accepts every schema version up to :data:`STREAM_SCHEMA_VERSION`:
    records without a ``schema`` field are treated as version 1 (the
    pre-versioning era), so stream files written by older releases
    validate -- and resume -- unchanged.  A *newer* schema than this
    code knows is reported, not guessed at.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    schema = record.get("schema", 1)
    if not isinstance(schema, int) or schema < 1:
        problems.append(f"schema must be a positive integer, got {schema!r}")
    elif schema > STREAM_SCHEMA_VERSION:
        problems.append(
            f"schema {schema} is newer than supported "
            f"({STREAM_SCHEMA_VERSION}); upgrade to read this stream"
        )
    for key, types in _RECORD_REQUIRED.items():
        if key not in record:
            problems.append(f"missing key '{key}'")
        elif record[key] is not None and not isinstance(record[key], types):
            problems.append(
                f"key '{key}' is {type(record[key]).__name__}, expected "
                + "/".join(t.__name__ for t in types)
            )
    return problems


def validate_campaign_stream(path: str) -> List[str]:
    """Problems with a streamed campaign JSONL file (empty when valid).

    Validates every line against :func:`validate_stream_record`;
    ``repro.obs report --validate`` runs this on files it detects as
    campaign streams (first record carries a ``cell`` key).
    """
    problems: List[str] = []
    records = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                problems.append(f"line {lineno}: invalid JSON ({error})")
                continue
            records += 1
            problems.extend(
                f"line {lineno}: {problem}"
                for problem in validate_stream_record(record)
            )
    if records == 0:
        problems.append("no campaign records in stream")
    return problems


def filter_completed(
    cells: Sequence[GridCell],
    completed: Dict[str, dict],
    fingerprints: Optional[Dict[str, str]] = None,
) -> Dict[str, dict]:
    """The subset of ``completed`` records trustworthy for ``cells``.

    Only a record whose fingerprint matches the cell's current
    configuration may be reused: ids omit parameters (altitude, box
    side...), so a mismatched or missing fingerprint means the cell must
    rerun.  This is the single place the resume decision is made -- the
    grid and the CLI both call it.  Pass ``fingerprints`` (cell id ->
    :func:`cell_fingerprint`) to reuse fingerprints already computed.
    """
    if fingerprints is None:
        fingerprints = {cell.cell_id: cell_fingerprint(cell) for cell in cells}
    return {
        cell_id: record
        for cell_id, record in completed.items()
        if cell_id in fingerprints
        and record.get("fingerprint") == fingerprints[cell_id]
    }


def load_completed_cells(path: str) -> Dict[str, dict]:
    """Load the per-cell summaries streamed by a previous grid run.

    Lines that fail to parse (for example a partial line written as the
    process died) are skipped; the corresponding cell simply reruns.
    Returns a mapping from cell id to its streamed summary.
    """
    completed: Dict[str, dict] = {}
    if not os.path.exists(path):
        return completed
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            cell_id = record.get("cell") if isinstance(record, dict) else None
            if cell_id:
                completed[cell_id] = record
    return completed


#: Cells inherited by forked grid workers (set before the pool forks).
_GRID_CELLS: Optional[Sequence[GridCell]] = None


def _cell_cache(spec: Optional[str]):
    """The result-cache store a cell's spec names (None: engine default).

    ``"remote:host:port"`` dials a shared
    :class:`~repro.engine.cache_remote.CacheServer`; anything else is a
    cache directory.  Built inside the (possibly forked) worker so each
    shard holds its own connection/handles.
    """
    if spec is None:
        return None
    if spec.startswith("remote:"):
        from repro.engine.cache_remote import RemoteCacheStore

        return RemoteCacheStore(spec[len("remote:"):])
    return ResultCache(directory=spec)


def _run_cell(
    index: int,
) -> Tuple[int, CampaignResult, float, dict, Optional[dict]]:
    """Execute one grid cell inside a worker.

    Returns ``(index, result, seconds, stats, obs_payload)``: ``stats``
    always carries the cell's engine and cache counters; ``obs_payload``
    is the cell's metrics snapshot plus serialized trace events when the
    cell asked to be observed (each observed cell runs under a *fresh*
    runtime, so its snapshot covers that campaign alone), else None.
    """
    assert _GRID_CELLS is not None
    cell = _GRID_CELLS[index]
    started = time.perf_counter()

    def execute() -> Tuple[CampaignResult, dict]:
        avis = Avis(
            cell.config,
            profiling_runs=cell.profiling_runs,
            budget_units=cell.budget_units,
            simulation_cost=cell.simulation_cost,
            labelling_cost=cell.labelling_cost,
            backend=cell.backend_spec,
            cache=_cell_cache(cell.cache_spec),
            traffic_faults=cell.traffic_faults,
        )
        avis.profile()
        campaign = avis.check(strategy=cell.strategy_factory())
        stats = {
            "engine": dict(avis.engine.last_stats),
            "cache": dict(avis.cache.stats),
        }
        return campaign, stats

    if not cell.observe:
        campaign, stats = execute()
        return index, campaign, time.perf_counter() - started, stats, None
    with observed(Observability()) as obs:
        campaign, stats = execute()
        payload = {
            "metrics": obs.metrics.snapshot(),
            "trace_events": obs.tracer.events,
        }
    return index, campaign, time.perf_counter() - started, stats, payload


@dataclass
class GridOutcome:
    """Everything a grid run produced, ready for JSON summarising.

    ``results`` holds the campaigns executed by *this* run;
    ``cell_summaries`` covers every cell of the matrix in matrix order,
    including cells resumed from a previous run's stream file (for which
    only the summary survives).
    """

    results: Dict[str, CampaignResult]
    wall_seconds: float
    cell_seconds: Dict[str, float]
    workers: int
    cell_summaries: Dict[str, dict] = field(default_factory=dict)
    resumed_cells: int = 0

    def summary(self) -> dict:
        """A JSON-serialisable summary of the whole grid run."""
        campaigns = list(self.cell_summaries.values())
        totals = {
            "campaigns": len(campaigns),
            "resumed": self.resumed_cells,
            "simulations": sum(c["simulations"] for c in campaigns),
            "unsafe_scenarios": sum(c["unsafe_scenarios"] for c in campaigns),
        }
        engine = self.engine_totals()
        if engine is not None:
            totals["engine"] = engine
        cache = self.cache_totals()
        if cache is not None:
            totals["cache"] = cache
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "campaigns": campaigns,
            "totals": totals,
        }

    def _summed_stats(self, key: str) -> Optional[dict]:
        """Per-cell counter dicts under ``key`` summed across the grid.

        Records resumed from stream files written before the counters
        existed simply don't contribute; None when no cell carried them.
        """
        totals: Dict[str, float] = {}
        seen = False
        for record in self.cell_summaries.values():
            stats = record.get(key)
            if not isinstance(stats, dict):
                continue
            seen = True
            for name, value in stats.items():
                if isinstance(value, (int, float)):
                    totals[name] = totals.get(name, 0) + value
        return totals if seen else None

    def engine_totals(self) -> Optional[dict]:
        """The grid-wide sum of every cell's ``CampaignEngine.last_stats``."""
        return self._summed_stats("engine")

    def cache_totals(self) -> Optional[dict]:
        """The grid-wide sum of every cell's ``ResultCache.stats``."""
        return self._summed_stats("cache")


class CampaignGrid:
    """Runs a list of grid cells, sharded across worker processes."""

    def __init__(
        self, cells: Sequence[GridCell], max_workers: Optional[int] = None
    ) -> None:
        ids = [cell.cell_id for cell in cells]
        if len(set(ids)) != len(ids):
            raise ValueError("grid cell ids must be unique")
        self._cells = list(cells)
        if max_workers is None:
            max_workers = max(1, min(4, os.cpu_count() or 1))
        self._max_workers = max(1, max_workers)

    @property
    def cells(self) -> List[GridCell]:
        """The configured cells, in matrix order."""
        return list(self._cells)

    @property
    def max_workers(self) -> int:
        """The configured shard count."""
        return self._max_workers

    def fingerprints(self) -> Dict[str, str]:
        """:func:`cell_fingerprint` of every cell, keyed by cell id."""
        return {cell.cell_id: cell_fingerprint(cell) for cell in self._cells}

    def run(
        self,
        on_progress: Optional[Callable[[str, CampaignResult], None]] = None,
        stream_path: Optional[str] = None,
        completed: Optional[Dict[str, dict]] = None,
        fingerprints: Optional[Dict[str, str]] = None,
        on_record: Optional[Callable[[dict], None]] = None,
    ) -> GridOutcome:
        """Execute every cell; ``on_progress`` fires as campaigns finish.

        Results are keyed by cell id, so completion order (which the
        pool does not guarantee) never affects the outcome.  When
        ``stream_path`` is given, each finished cell's summary is
        appended to it as one JSON line; cells whose ids appear in
        ``completed`` (a mapping loaded by :func:`load_completed_cells`)
        are skipped and their streamed summaries reused.  Pass
        ``fingerprints`` (from :meth:`fingerprints`) when the caller has
        already computed them, e.g. to display the resumed count before
        running.  ``on_record`` fires with each finished cell's streamed
        record (the JSONL schema) -- the campaign service uses it to
        multiplex live progress to watching clients.
        """
        started = time.perf_counter()
        if fingerprints is None:
            fingerprints = self.fingerprints()
        completed = filter_completed(self._cells, completed or {}, fingerprints)
        results: Dict[str, CampaignResult] = {}
        cell_seconds: Dict[str, float] = {}
        summaries: Dict[str, dict] = {}
        pending = [
            index
            for index, cell in enumerate(self._cells)
            if cell.cell_id not in completed
        ]
        workers = min(self._max_workers, len(pending)) or 1

        stream = None
        if stream_path is not None:
            stream = open(stream_path, "a", encoding="utf-8")
        try:
            collect = lambda outcome: self._collect(  # noqa: E731
                outcome, results, cell_seconds, summaries, stream, on_progress,
                fingerprints, on_record,
            )
            if workers <= 1 or not _fork_available():
                workers = 1
                for index in pending:
                    collect(_run_cell_local(self._cells, index))
            else:
                global _GRID_CELLS  # repro-lint: disable=FAB003 -- set immediately before fork so workers inherit the parent's cells by design
                _GRID_CELLS = self._cells
                context = multiprocessing.get_context("fork")
                try:
                    with context.Pool(processes=workers) as pool:
                        for outcome in pool.imap_unordered(_run_cell, pending):
                            collect(outcome)
                finally:
                    _GRID_CELLS = None
        finally:
            if stream is not None:
                stream.close()

        # Re-key into matrix order for stable summaries, merging the
        # summaries of resumed cells in their matrix position.
        ordered = {
            cell.cell_id: results[cell.cell_id]
            for cell in self._cells
            if cell.cell_id in results
        }
        ordered_summaries: Dict[str, dict] = {}
        resumed = 0
        for cell in self._cells:
            if cell.cell_id in summaries:
                ordered_summaries[cell.cell_id] = summaries[cell.cell_id]
            elif cell.cell_id in completed:
                ordered_summaries[cell.cell_id] = completed[cell.cell_id]
                resumed += 1
        return GridOutcome(
            results=ordered,
            wall_seconds=time.perf_counter() - started,
            cell_seconds=cell_seconds,
            workers=workers,
            cell_summaries=ordered_summaries,
            resumed_cells=resumed,
        )

    def _collect(
        self,
        outcome: Tuple[int, CampaignResult, float, dict, Optional[dict]],
        results: Dict[str, CampaignResult],
        cell_seconds: Dict[str, float],
        summaries: Dict[str, dict],
        stream,
        on_progress: Optional[Callable[[str, CampaignResult], None]],
        fingerprints: Dict[str, str],
        on_record: Optional[Callable[[dict], None]] = None,
    ) -> None:
        index, campaign, seconds, stats, payload = outcome
        cell = self._cells[index]
        cell_id = cell.cell_id
        results[cell_id] = campaign
        cell_seconds[cell_id] = seconds
        summaries[cell_id] = summarize_campaign(
            cell_id,
            campaign,
            wall_seconds=seconds,
            fleet_size=getattr(cell.config, "fleet_size", 1),
            fingerprint=fingerprints[cell_id],
            vehicles=(
                [spec.describe() for spec in cell.config.vehicle_specs]
                if getattr(cell.config, "is_heterogeneous", False)
                else None
            ),
            engine_stats=stats.get("engine"),
            cache_stats=stats.get("cache"),
            metrics=payload.get("metrics") if payload is not None else None,
        )
        if payload is not None:
            # Adopt the cell's trace into the grid-level tracer (when one
            # is installed) so a single --trace file covers every cell.
            parent = obs_runtime.current()
            if parent is not None:
                parent.tracer.extend(payload.get("trace_events", ()))
        if stream is not None:
            stream.write(json.dumps(summaries[cell_id], sort_keys=True) + "\n")
            stream.flush()
        if on_record is not None:
            on_record(summaries[cell_id])
        if on_progress is not None:
            on_progress(cell_id, campaign)


def _run_cell_local(
    cells: Sequence[GridCell], index: int
) -> Tuple[int, CampaignResult, float, dict, Optional[dict]]:
    """Serial-path equivalent of :func:`_run_cell` (no global needed)."""
    global _GRID_CELLS  # repro-lint: disable=FAB003 -- serial path; saves and restores the slot around the cell run
    previous = _GRID_CELLS
    _GRID_CELLS = cells
    try:
        return _run_cell(index)
    finally:
        _GRID_CELLS = previous
