"""Campaign grids: sharding a campaign matrix across worker processes.

A *grid* is the (firmware x workload x strategy x budget) matrix behind
the paper's evaluation tables: Table III/IV run every strategy on every
firmware, Table V runs two strategies per re-inserted bug.  Each cell is
one full campaign -- profile the fault-free mission, calibrate the
monitor, run the strategy to budget exhaustion -- and cells are
completely independent, so the grid shards them across a forked worker
pool, one campaign per worker at a time.

Inside a grid worker every campaign uses the :class:`SerialBackend`
(nesting process pools inside pool workers is not supported by
``multiprocessing`` daemonic processes, and cell-level sharding already
saturates the machine).  Because each cell is deterministic, a sharded
grid produces exactly the results of the equivalent sequential loop.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration
from repro.engine.backends import SerialBackend, _fork_available


@dataclass
class GridCell:
    """One campaign of the matrix.

    ``strategy_factory`` (rather than a strategy instance) because
    strategies carry per-campaign state (RNG position, enumeration
    cursors); every cell must start from a fresh instance.
    """

    cell_id: str
    config: RunConfiguration
    strategy_factory: Callable[[], object]
    budget_units: float = 60.0
    profiling_runs: int = 2
    simulation_cost: float = 1.0
    labelling_cost: float = 0.15


#: Cells inherited by forked grid workers (set before the pool forks).
_GRID_CELLS: Optional[Sequence[GridCell]] = None


def _run_cell(index: int) -> Tuple[int, CampaignResult, float]:
    """Execute one grid cell inside a worker; returns (index, result, seconds)."""
    assert _GRID_CELLS is not None
    cell = _GRID_CELLS[index]
    started = time.perf_counter()
    avis = Avis(
        cell.config,
        profiling_runs=cell.profiling_runs,
        budget_units=cell.budget_units,
        simulation_cost=cell.simulation_cost,
        labelling_cost=cell.labelling_cost,
        backend=SerialBackend(),
    )
    avis.profile()
    campaign = avis.check(strategy=cell.strategy_factory())
    return index, campaign, time.perf_counter() - started


@dataclass
class GridOutcome:
    """Everything a grid run produced, ready for JSON summarising."""

    results: Dict[str, CampaignResult]
    wall_seconds: float
    cell_seconds: Dict[str, float]
    workers: int

    def summary(self) -> dict:
        """A JSON-serialisable summary of the whole grid run."""
        campaigns = []
        for cell_id, campaign in self.results.items():
            campaigns.append(
                {
                    "cell": cell_id,
                    "firmware": campaign.firmware_name,
                    "workload": campaign.workload_name,
                    "strategy": campaign.strategy_name,
                    "simulations": campaign.simulations,
                    "labels": campaign.labels,
                    "budget_spent": campaign.budget_spent,
                    "unsafe_scenarios": campaign.unsafe_scenario_count,
                    "unsafe_conditions": campaign.unsafe_condition_count,
                    "triggered_bugs": sorted(campaign.triggered_bug_ids),
                    "per_mode": campaign.per_mode_counts,
                    "efficiency": campaign.efficiency,
                    "wall_seconds": self.cell_seconds.get(cell_id),
                }
            )
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "campaigns": campaigns,
            "totals": {
                "campaigns": len(campaigns),
                "simulations": sum(c["simulations"] for c in campaigns),
                "unsafe_scenarios": sum(c["unsafe_scenarios"] for c in campaigns),
            },
        }


class CampaignGrid:
    """Runs a list of grid cells, sharded across worker processes."""

    def __init__(
        self, cells: Sequence[GridCell], max_workers: Optional[int] = None
    ) -> None:
        ids = [cell.cell_id for cell in cells]
        if len(set(ids)) != len(ids):
            raise ValueError("grid cell ids must be unique")
        self._cells = list(cells)
        if max_workers is None:
            max_workers = max(1, min(4, os.cpu_count() or 1))
        self._max_workers = max(1, max_workers)

    @property
    def cells(self) -> List[GridCell]:
        """The configured cells, in matrix order."""
        return list(self._cells)

    @property
    def max_workers(self) -> int:
        """The configured shard count."""
        return self._max_workers

    def run(
        self,
        on_progress: Optional[Callable[[str, CampaignResult], None]] = None,
    ) -> GridOutcome:
        """Execute every cell; ``on_progress`` fires as campaigns finish.

        Results are keyed by cell id, so completion order (which the
        pool does not guarantee) never affects the outcome.
        """
        started = time.perf_counter()
        results: Dict[str, CampaignResult] = {}
        cell_seconds: Dict[str, float] = {}
        workers = min(self._max_workers, len(self._cells)) or 1

        if workers <= 1 or not _fork_available():
            workers = 1
            for index in range(len(self._cells)):
                self._collect(_run_cell_local(self._cells, index), results,
                              cell_seconds, on_progress)
        else:
            global _GRID_CELLS
            _GRID_CELLS = self._cells
            context = multiprocessing.get_context("fork")
            try:
                with context.Pool(processes=workers) as pool:
                    for outcome in pool.imap_unordered(
                        _run_cell, range(len(self._cells))
                    ):
                        self._collect(outcome, results, cell_seconds, on_progress)
            finally:
                _GRID_CELLS = None

        # Re-key into matrix order for stable summaries.
        ordered = {
            cell.cell_id: results[cell.cell_id]
            for cell in self._cells
            if cell.cell_id in results
        }
        return GridOutcome(
            results=ordered,
            wall_seconds=time.perf_counter() - started,
            cell_seconds=cell_seconds,
            workers=workers,
        )

    def _collect(
        self,
        outcome: Tuple[int, CampaignResult, float],
        results: Dict[str, CampaignResult],
        cell_seconds: Dict[str, float],
        on_progress: Optional[Callable[[str, CampaignResult], None]],
    ) -> None:
        index, campaign, seconds = outcome
        cell_id = self._cells[index].cell_id
        results[cell_id] = campaign
        cell_seconds[cell_id] = seconds
        if on_progress is not None:
            on_progress(cell_id, campaign)


def _run_cell_local(
    cells: Sequence[GridCell], index: int
) -> Tuple[int, CampaignResult, float]:
    """Serial-path equivalent of :func:`_run_cell` (no global needed)."""
    global _GRID_CELLS
    previous = _GRID_CELLS
    _GRID_CELLS = cells
    try:
        return _run_cell(index)
    finally:
        _GRID_CELLS = previous
