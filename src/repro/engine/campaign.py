"""The campaign engine: batched execution of one checking campaign.

:class:`CampaignEngine` sits between the orchestrator
(:class:`repro.core.avis.Avis`) and a search strategy.  Strategies that
implement the batch protocol
(:meth:`repro.core.strategies.base.SearchStrategy.propose_batch`) are
driven in rounds: the engine asks for a batch of scenarios (the
proposer charges labelling and simulation budget in its sequential
per-candidate order), resolves cache hits, fans the remainder out to
the execution backend, then records every result in proposal order
before asking for the next batch.  Strategies without a batch
implementation fall back to their sequential ``explore()`` loop
unchanged, which still benefits from the result cache via the session.

For SABRE -- the paper's headline strategy -- each round is (up to) one
transition-dequeue's worth of candidate expansion, so the proposal
round *is* the barrier of the barrier-per-dequeue pipeline: every
in-flight simulation of a round completes and is ingested before the
feedback-consuming decisions of the next round are taken.  The backend
is free to finish the round's simulations in any order (and does, see
:class:`repro.engine.backends.ProcessPoolBackend`); the engine reorders
them back into proposal order at recording time.

Recording in proposal order is what keeps a parallel campaign
bit-identical to a serial one: the per-run outcomes are deterministic
functions of ``(config, scenario)``, and order is the only thing a pool
could otherwise scramble.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.backends import ExecutionBackend, SerialBackend, resolve_backend
from repro.engine.cache import (
    ResultCache,
    adapt_cached_result,
    campaign_fingerprint,
    scenario_key,
)
from repro.obs import runtime as obs_runtime

#: Scenarios requested per proposal round.  Large enough to keep a
#: 4-worker pool busy, small enough that budget truncation stays tight.
DEFAULT_BATCH_SIZE = 8

#: Auto-tuning bounds, as multiples of the backend's worker count.
AUTO_BATCH_MAX_FACTOR = 8


class CampaignEngine:
    """Drives one strategy's campaign through a backend and a cache.

    ``batch_size`` is either a fixed round size or the string ``"auto"``:
    auto-tuning sizes each proposal round from the backend's worker
    count and the campaign's running ``last_stats`` -- when cache hits
    resolve part of a round without touching the backend, the next round
    is inflated so the *executed* remainder still fills the workers.
    Because every batchable strategy is bit-identical at every batch
    size (the PR 1 contract), tuning is purely a scheduling decision and
    never changes campaign results.
    """

    def __init__(
        self,
        backend=None,
        cache: Optional[ResultCache] = None,
        batch_size=DEFAULT_BATCH_SIZE,
    ) -> None:
        # Backend specs ("serial", "pool:8", "remote:host:port") are the
        # supported spelling; instances still work behind a deprecation
        # warning.  This is the single resolution point -- Avis and the
        # grid pass their backend argument through untouched.
        backend = resolve_backend(backend)
        self._backend = backend if backend is not None else SerialBackend()
        self._cache = cache
        self._auto_batch = batch_size == "auto"
        if self._auto_batch:
            self._batch_size = self._auto_initial_size()
        else:
            self._batch_size = max(1, int(batch_size))
        self.last_stats: Dict[str, int] = self._fresh_stats()

    @staticmethod
    def _fresh_stats() -> Dict[str, int]:
        return {"rounds": 0, "proposed": 0, "cache_hits": 0, "executed": 0}

    # ------------------------------------------------------------------
    # Adaptive batch sizing
    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return max(1, getattr(self._backend, "max_workers", 1))

    def _auto_initial_size(self) -> int:
        """First-round size: two scenarios per worker keeps the pool busy
        while the first feedback arrives; a serial backend gains nothing
        from large rounds, so it stays at the classic default."""
        workers = self._worker_count()
        if workers <= 1:
            return DEFAULT_BATCH_SIZE
        return 2 * workers

    def _auto_tuned_size(self) -> int:
        """Next-round size from the campaign's running statistics.

        Targets two *executed* scenarios per worker and round: when the
        hit rate so far left workers idle (executed < proposed), the
        proposal size is inflated by the observed proposed/executed
        ratio, clamped to [workers, AUTO_BATCH_MAX_FACTOR * workers].
        """
        workers = self._worker_count()
        if workers <= 1:
            return DEFAULT_BATCH_SIZE
        stats = self.last_stats
        target = 2 * workers
        if stats["rounds"] == 0 or stats["executed"] == 0:
            inflation = 1.0 if stats["rounds"] == 0 else float(AUTO_BATCH_MAX_FACTOR)
        else:
            inflation = stats["proposed"] / stats["executed"]
        size = int(round(target * inflation))
        return max(workers, min(AUTO_BATCH_MAX_FACTOR * workers, size))

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend used for batched strategies."""
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        """The shared result cache (None when caching is disabled)."""
        return self._cache

    @property
    def auto_batch_size(self) -> bool:
        """True when the engine tunes its round size at runtime."""
        return self._auto_batch

    @property
    def batch_size(self) -> int:
        """Scenarios requested per proposal round (the current size, for
        an auto-tuning engine)."""
        return self._batch_size

    def execute(self, strategy, session) -> None:
        """Run ``strategy`` to budget exhaustion, recording into ``session``.

        Budget accounting happens entirely inside ``propose_batch`` (in
        the same per-candidate order as the strategy's sequential loop),
        so the engine only executes what was proposed and records the
        results.  :attr:`last_stats` afterwards reports how the campaign
        was scheduled: proposal rounds, scenarios proposed, cache hits
        resolved without a simulation, and scenarios the backend
        actually executed.
        """
        self.last_stats = self._fresh_stats()
        obs = obs_runtime.current()
        strategy_name = getattr(strategy, "name", type(strategy).__name__)
        if not strategy.has_batch_support:
            if obs is not None:
                with obs.tracer.span(
                    "engine.sequential",
                    strategy=strategy_name,
                    backend=self._backend.name,
                ):
                    strategy.explore(session)
            else:
                strategy.explore(session)
            return

        config = session.runner.config
        monitor = session.runner.monitor
        workload_name = (
            campaign_fingerprint(config, monitor) if self._cache is not None else ""
        )

        while True:
            if self._auto_batch:
                tuned = self._auto_tuned_size()
                if obs is not None and tuned != self._batch_size:
                    obs.tracer.instant(
                        "engine.autotune",
                        size=tuned,
                        previous=self._batch_size,
                        strategy=strategy_name,
                    )
                    obs.metrics.gauge(
                        "engine.batch_size", strategy=strategy_name
                    ).set(tuned)
                self._batch_size = tuned
            round_start = obs.tracer.clock() if obs is not None else 0.0
            batch = strategy.propose_batch(session, self._batch_size)
            if batch is None:
                # The strategy withdrew from batching; finish sequentially.
                strategy.explore(session)
                return
            if not batch:
                return
            self.last_stats["rounds"] += 1
            self.last_stats["proposed"] += len(batch)

            # Resolve cache hits, then execute the misses as one batch.
            slots: List[Tuple[object, str, Optional[object]]] = []
            pending = []
            for scenario in batch:
                key = ""
                cached = None
                if self._cache is not None:
                    key = scenario_key(config, workload_name, scenario)
                    stored = self._cache.get(key)
                    if stored is not None:
                        cached = adapt_cached_result(stored, monitor)
                slots.append((scenario, key, cached))
                if cached is None:
                    pending.append(scenario)
            self.last_stats["cache_hits"] += len(batch) - len(pending)
            self.last_stats["executed"] += len(pending)

            # The backend may complete the round's simulations in any
            # order; run_scenarios hands them back in submission order,
            # and recording follows proposal order slot by slot.
            executed = iter(
                self._backend.run_scenarios(config, monitor, pending)
            )
            for scenario, key, cached in slots:
                result = cached if cached is not None else next(executed)
                if cached is None and self._cache is not None:
                    self._cache.put(key, result)
                session.ingest_result(scenario, result)
                if hasattr(strategy, "simulations_run"):
                    strategy.simulations_run += 1

            if obs is not None:
                round_seconds = obs.tracer.clock() - round_start
                obs.tracer.complete(
                    "engine.round",
                    round_start,
                    round_start + round_seconds,
                    strategy=strategy_name,
                    backend=self._backend.name,
                    proposed=len(batch),
                    cache_hits=len(batch) - len(pending),
                    executed=len(pending),
                )
                labels = {"strategy": strategy_name, "backend": self._backend.name}
                obs.metrics.counter("engine.rounds", **labels).inc()
                obs.metrics.counter("engine.proposed", **labels).inc(len(batch))
                obs.metrics.counter("engine.cache_hits", **labels).inc(
                    len(batch) - len(pending)
                )
                obs.metrics.counter("engine.executed", **labels).inc(len(pending))
                obs.metrics.histogram("engine.round_seconds", **labels).observe(
                    round_seconds
                )

    def close(self) -> None:
        """Release backend resources."""
        self._backend.close()
