"""The campaign engine: batched execution of one checking campaign.

:class:`CampaignEngine` sits between the orchestrator
(:class:`repro.core.avis.Avis`) and a search strategy.  Strategies that
implement the batch protocol
(:meth:`repro.core.strategies.base.SearchStrategy.propose_batch`) are
driven in rounds: the engine asks for a batch of scenarios (the
proposer charges labelling and simulation budget in its sequential
per-candidate order), resolves cache hits, fans the remainder out to
the execution backend, then records every result in proposal order
before asking for the next batch.  Strategies without a
batch implementation -- SABRE's feedback-driven queue, BFI's
budget-interleaved labelling -- fall back to their sequential
``explore()`` loop unchanged, which still benefits from the result
cache via the session.

Recording in proposal order is what keeps a parallel campaign
bit-identical to a serial one: the per-run outcomes are deterministic
functions of ``(config, scenario)``, and order is the only thing a pool
could otherwise scramble.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.cache import (
    ResultCache,
    adapt_cached_result,
    campaign_fingerprint,
    scenario_key,
)

#: Scenarios requested per proposal round.  Large enough to keep a
#: 4-worker pool busy, small enough that budget truncation stays tight.
DEFAULT_BATCH_SIZE = 8


class CampaignEngine:
    """Drives one strategy's campaign through a backend and a cache."""

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self._backend = backend if backend is not None else SerialBackend()
        self._cache = cache
        self._batch_size = max(1, batch_size)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend used for batched strategies."""
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        """The shared result cache (None when caching is disabled)."""
        return self._cache

    def execute(self, strategy, session) -> None:
        """Run ``strategy`` to budget exhaustion, recording into ``session``.

        Budget accounting happens entirely inside ``propose_batch`` (in
        the same per-candidate order as the strategy's sequential loop),
        so the engine only executes what was proposed and records the
        results.
        """
        if not strategy.supports_batching:
            strategy.explore(session)
            return

        config = session.runner.config
        monitor = session.runner.monitor
        workload_name = (
            campaign_fingerprint(config, monitor) if self._cache is not None else ""
        )

        while True:
            batch = strategy.propose_batch(session, self._batch_size)
            if batch is None:
                # The strategy withdrew from batching; finish sequentially.
                strategy.explore(session)
                return
            if not batch:
                return

            # Resolve cache hits, then execute the misses as one batch.
            slots: List[Tuple[object, str, Optional[object]]] = []
            pending = []
            for scenario in batch:
                key = ""
                cached = None
                if self._cache is not None:
                    key = scenario_key(config, workload_name, scenario)
                    stored = self._cache.get(key)
                    if stored is not None:
                        cached = adapt_cached_result(stored, monitor)
                slots.append((scenario, key, cached))
                if cached is None:
                    pending.append(scenario)

            executed = iter(
                self._backend.run_scenarios(config, monitor, pending)
            )
            for scenario, key, cached in slots:
                result = cached if cached is not None else next(executed)
                if cached is None and self._cache is not None:
                    self._cache.put(key, result)
                session.ingest_result(scenario, result)
                if hasattr(strategy, "simulations_run"):
                    strategy.simulations_run += 1

    def close(self) -> None:
        """Release backend resources."""
        self._backend.close()
