"""A network-shared result cache: socket server + client store.

The content-addressed :class:`~repro.engine.cache.ResultCache` is safe
to share -- keys are pure functions of ``(config, scenario)`` and the
bug-registry/schema version stamp makes a shared directory
self-invalidating -- so serving one over a socket turns every campaign
worker and every service job into tenants of one warm store.  This
module provides both halves:

* :class:`CacheServer` wraps any local :class:`ResultCache` (usually a
  directory-backed one) and serves get/put/stats over the same
  length-prefixed JSON frames the remote execution backend uses
  (:mod:`repro.engine.remote`).  One thread per client connection; the
  wrapped cache is guarded by a lock, so concurrent clients serialize
  on the store rather than interleaving writes.
* :class:`RemoteCacheStore` is the client: it satisfies the
  :class:`~repro.engine.cache.CacheStore` protocol, so it slots under
  ``Avis(cache=...)`` and the campaign engine unchanged.  The handshake
  compares bug-registry stamps -- a client whose firmware registries
  differ from the server's refuses the store outright, the same
  self-invalidation rule a shared directory applies.

A cache is an optimisation, never a dependency: when the server becomes
unreachable mid-campaign the client degrades to recording misses (and
dropping puts) instead of failing the campaign.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import warnings
from typing import Dict, Optional, Tuple, Union

from repro.core.runner import RunResult
from repro.engine.cache import ResultCache, bug_registry_stamp
from repro.engine.remote import (
    PROTOCOL_VERSION,
    decode_payload,
    encode_payload,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.obs import runtime as obs_runtime


class CacheServer:
    """Serves a local :class:`ResultCache` to remote clients over TCP.

    Start/stop explicitly or use as a context manager::

        cache = ResultCache(directory="/shared/avis-cache")
        with CacheServer(cache, port=7801) as server:
            print("serving", server.endpoint)
            ...

    The server never interprets results -- frames carry opaque pickled
    payloads -- so it can front a store for campaigns it knows nothing
    about, as long as the bug-registry stamps agree.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._cache = cache if cache is not None else ResultCache()
        self._lock = threading.Lock()
        self._stamp = bug_registry_stamp()
        self._connections: set = set()
        self.served_gets = 0
        self.served_puts = 0
        server = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin dispatch
                server._serve_connection(self.request)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def cache(self) -> ResultCache:
        """The wrapped local store."""
        return self._cache

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` endpoint."""
        return self._server.server_address[:2]

    @property
    def endpoint(self) -> str:
        """The bound endpoint as a ``host:port`` string."""
        return format_address(self.address)

    def start(self) -> "CacheServer":
        """Serve clients on a daemon thread until :meth:`stop`."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()
        # Sever live client connections too: stopping the listener alone
        # would leave their handler threads silently serving on.
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _serve_connection(self, connection: socket.socket) -> None:
        with self._lock:
            self._connections.add(connection)
        try:
            while True:
                try:
                    frame = recv_frame(connection)
                except (ConnectionError, OSError):
                    return
                try:
                    reply = self._handle(frame)
                except Exception as error:  # never kill the serve thread
                    reply = {"ok": False, "error": str(error)}
                try:
                    send_frame(connection, reply)
                except OSError:
                    return
        finally:
            with self._lock:
                self._connections.discard(connection)

    def _handle(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "hello":
            return {
                "ok": frame.get("protocol") == PROTOCOL_VERSION,
                "protocol": PROTOCOL_VERSION,
                "stamp": self._stamp,
            }
        if op == "get":
            key = str(frame.get("key", ""))
            with self._lock:
                result = self._cache.get(key)
                self.served_gets += 1
            if result is None:
                return {"ok": True, "found": False}
            return {"ok": True, "found": True, "result": encode_payload(result)}
        if op == "put":
            key = str(frame.get("key", ""))
            result = decode_payload(frame["result"])
            with self._lock:
                self._cache.put(key, result)
                self.served_puts += 1
            return {"ok": True}
        if op == "stats":
            with self._lock:
                stats = dict(self._cache.stats)
            stats["served_gets"] = self.served_gets
            stats["served_puts"] = self.served_puts
            return {"ok": True, "stats": stats}
        return {"ok": False, "error": f"unknown op '{op}'"}


class RemoteCacheStore:
    """Client of a :class:`CacheServer`, satisfying ``CacheStore``.

    Results fetched once are memoised in-process (mirroring
    ``ResultCache``'s memory tier), so a campaign that re-reads a key
    pays the wire exactly once.  Hit/miss counters are client-local --
    they describe *this* campaign's cache behaviour; the server-side
    totals are available through :meth:`server_stats`.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        connect_timeout: float = 10.0,
        op_timeout: float = 60.0,
    ) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self._address = tuple(address)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._broken = False
        self._memory: Dict[str, RunResult] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.dropped = 0
        # Fail fast on version skew: connect (and stamp-check) eagerly.
        with self._lock:
            self._ensure_connection()

    @property
    def endpoint(self) -> str:
        """The server endpoint as a ``host:port`` string."""
        return format_address(self._address)

    # ------------------------------------------------------------------
    def _ensure_connection(self) -> Optional[socket.socket]:
        """The live server socket, dialling if needed (lock held)."""
        if self._sock is not None:
            return self._sock
        if self._broken:
            return None
        sock = socket.create_connection(
            self._address, timeout=self._connect_timeout
        )
        sock.settimeout(self._op_timeout)
        try:
            send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
            reply = recv_frame(sock)
        except BaseException:
            sock.close()
            raise
        if not reply.get("ok"):
            sock.close()
            raise ConnectionError(
                f"cache server {self.endpoint} speaks protocol "
                f"{reply.get('protocol')}, client speaks {PROTOCOL_VERSION}"
            )
        if reply.get("stamp") != bug_registry_stamp():
            # Same rule as a shared directory: results recorded under a
            # different bug registry (or cache schema) must not be
            # served.  Refusing the store beats silently-wrong hits.
            sock.close()
            raise ConnectionError(
                f"cache server {self.endpoint} serves a different "
                "bug-registry/schema stamp; refusing the shared store"
            )
        self._sock = sock
        return sock

    def _request(self, frame: dict) -> Optional[dict]:
        """One op round-trip; None when the server is (now) unreachable."""
        with self._lock:
            for attempt in (0, 1):
                try:
                    sock = self._ensure_connection()
                except (OSError, ConnectionError) as error:
                    self._mark_broken(error)
                    return None
                if sock is None:
                    return None
                try:
                    send_frame(sock, frame)  # repro-lint: disable=FAB002 -- single-connection protocol: the lock *is* the request serializer and the socket carries a timeout
                    return recv_frame(sock)
                except (OSError, ConnectionError) as error:
                    # Drop the connection; one redial covers a server
                    # restart, anything more is an outage.
                    self._sock = None
                    try:
                        sock.close()
                    except OSError:
                        pass
                    if attempt:
                        self._mark_broken(error)
            return None

    def _mark_broken(self, error: BaseException) -> None:
        if not self._broken:
            self._broken = True
            warnings.warn(
                f"shared cache {self.endpoint} unreachable ({error}); "
                "continuing without it",
                RuntimeWarning,
                stacklevel=4,
            )

    # ------------------------------------------------------------------
    # CacheStore protocol
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or None on a miss."""
        obs = obs_runtime.current()
        result = self._memory.get(key)
        if result is None:
            reply = self._request({"op": "get", "key": key})
            if reply is not None and reply.get("ok") and reply.get("found"):
                try:
                    result = decode_payload(reply["result"])
                except Exception:
                    result = None
                if result is not None:
                    self._memory[key] = result
        if result is None:
            self.misses += 1
            if obs is not None:
                obs.metrics.counter("cache.misses").inc()
            return None
        self.hits += 1
        if obs is not None:
            obs.metrics.counter("cache.hits").inc()
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (last write wins, server-side)."""
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter("cache.puts").inc()
        self._memory[key] = result
        self.puts += 1
        reply = self._request(
            {"op": "put", "key": key, "result": encode_payload(result)}
        )
        if reply is None or not reply.get("ok"):
            self.dropped += 1

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        reply = self._request({"op": "get", "key": key})
        return bool(reply is not None and reply.get("ok") and reply.get("found"))

    def __len__(self) -> int:
        return len(self._memory)

    def keys(self):
        """Keys fetched or stored by *this* client, sorted (the
        determinism tests compare these across backends)."""
        return sorted(self._memory)

    @property
    def stats(self) -> Dict[str, int]:
        """Client-local hit/miss/put counters plus the memo size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memory),
            "puts": self.puts,
            "dropped": self.dropped,
        }

    def server_stats(self) -> Optional[Dict[str, int]]:
        """The server-side store's counters (None when unreachable)."""
        reply = self._request({"op": "stats"})
        if reply is None or not reply.get("ok"):
            return None
        return dict(reply.get("stats", {}))

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
