"""The Section III bug study: dataset and analysis.

The paper reviews 394 bug reports from the public ArduPilot and PX4
GitHub repositories (2016-2019), prunes them to 215 analysable bugs and
classifies them by root cause, reproducibility and symptom.  We do not
have the authors' spreadsheet, so :mod:`repro.bugstudy.dataset`
reconstructs a per-bug dataset whose aggregate statistics match every
number the paper reports (Findings 1-3 and Figure 3), and
:mod:`repro.bugstudy.analysis` recomputes those statistics from the
per-bug records -- which is what the Figure 3 benchmark regenerates.
"""

from repro.bugstudy.analysis import (
    BugStudySummary,
    finding1_sensor_bug_share,
    finding2_reproducibility,
    finding3_severity,
    summarize,
)
from repro.bugstudy.dataset import (
    BugRecord,
    BugReview,
    Reproducibility,
    RootCause,
    Symptom,
    build_dataset,
    build_review,
)

__all__ = [
    "BugRecord",
    "BugReview",
    "BugStudySummary",
    "Reproducibility",
    "RootCause",
    "Symptom",
    "build_dataset",
    "build_review",
    "finding1_sensor_bug_share",
    "finding2_reproducibility",
    "finding3_severity",
    "summarize",
]
