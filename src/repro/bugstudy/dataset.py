"""The reconstructed 215-bug dataset of Section III.

Every quantitative statement the paper makes about the study is encoded
here and honoured by the generated per-bug records:

* 394 bugs reviewed (206 ArduPilot + 188 PX4); 29 excluded as
  development-environment/tooling issues; 150 removed as duplicates,
  false or non-firmware reports; 215 analysed.
* Root causes: semantic 68 %, sensor 20 % (44 bugs), the remainder split
  between memory and other (Finding 1).
* Sensor bugs account for 40 % of the bugs whose symptom is a crash or
  fly-away.
* 47 % of sensor bugs reproduce under default settings; the rest need a
  custom environment or custom environment + hardware (Finding 2,
  Figure 3B).
* About 34 % of sensor bugs have serious symptoms (crash / fly-away);
  90 % of semantic bugs are asymptomatic (Finding 3, Figure 3C).

The records are synthetic (ids are generated), but the *distribution* is
the paper's; the analysis code treats them exactly as it would treat a
hand-labelled spreadsheet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sensors.base import SensorType


class RootCause(enum.Enum):
    """Root-cause classes used by the study."""

    SEMANTIC = "semantic"
    SENSOR = "sensor"
    MEMORY = "memory"
    OTHER = "other"


class Reproducibility(enum.Enum):
    """Flight conditions needed to reproduce a bug (Figure 3B)."""

    DEFAULT_SETTINGS = "default settings"
    CUSTOM_ENVIRONMENT = "custom env"
    CUSTOM_ENVIRONMENT_AND_HARDWARE = "custom env & hw"


class Symptom(enum.Enum):
    """Symptom classes (Figure 3C)."""

    CRASH_OR_FLY_AWAY = "crash/fly away"
    TRANSIENT = "transient"
    NO_SYMPTOMS = "no symptoms"


@dataclass(frozen=True)
class BugRecord:
    """One classified bug report."""

    bug_id: str
    firmware: str
    root_cause: RootCause
    reproducibility: Reproducibility
    symptom: Symptom
    #: For sensor bugs: the sensor type involved (used by the BFI prior).
    sensor_type: Optional[SensorType] = None

    @property
    def is_serious(self) -> bool:
        """True when the bug crashed the vehicle or made it fly away."""
        return self.symptom == Symptom.CRASH_OR_FLY_AWAY


@dataclass(frozen=True)
class BugReview:
    """The full review bookkeeping of Section III."""

    total_reviewed: int
    ardupilot_reports: int
    px4_reports: int
    excluded_tooling: int
    excluded_duplicates_or_unclear: int
    analysed: Tuple[BugRecord, ...]

    @property
    def analysed_count(self) -> int:
        """Number of bugs that survived pruning (215 in the paper)."""
        return len(self.analysed)


# ----------------------------------------------------------------------
# Dataset construction
# ----------------------------------------------------------------------
#: Exact category counts for the 215 analysed bugs.  Derived from the
#: paper's percentages: semantic 68 % of 215 ~= 146, sensor bugs = 44
#: (given explicitly), memory and other split the remaining 25.
_ROOT_CAUSE_COUNTS: Dict[RootCause, int] = {
    RootCause.SEMANTIC: 146,
    RootCause.SENSOR: 44,
    RootCause.MEMORY: 14,
    RootCause.OTHER: 11,
}

#: Symptom breakdown per root cause.  Sensor: 34 % serious (15 of 44),
#: the remainder mostly transient; semantic: 90 % asymptomatic (131 of
#: 146); crash bugs overall are chosen so sensor bugs are 40 % of them
#: (15 serious sensor bugs out of ~37 serious bugs overall).
_SYMPTOM_COUNTS: Dict[RootCause, Dict[Symptom, int]] = {
    RootCause.SENSOR: {
        Symptom.CRASH_OR_FLY_AWAY: 15,
        Symptom.TRANSIENT: 21,
        Symptom.NO_SYMPTOMS: 8,
    },
    RootCause.SEMANTIC: {
        Symptom.CRASH_OR_FLY_AWAY: 8,
        Symptom.TRANSIENT: 7,
        Symptom.NO_SYMPTOMS: 131,
    },
    RootCause.MEMORY: {
        Symptom.CRASH_OR_FLY_AWAY: 8,
        Symptom.TRANSIENT: 4,
        Symptom.NO_SYMPTOMS: 2,
    },
    RootCause.OTHER: {
        Symptom.CRASH_OR_FLY_AWAY: 6,
        Symptom.TRANSIENT: 3,
        Symptom.NO_SYMPTOMS: 2,
    },
}

#: Reproducibility breakdown for the 44 sensor bugs (Figure 3B):
#: 47 % (21) under default settings, the rest needing custom
#: environments or custom environment + hardware.
_SENSOR_REPRODUCIBILITY_COUNTS: Dict[Reproducibility, int] = {
    Reproducibility.DEFAULT_SETTINGS: 21,
    Reproducibility.CUSTOM_ENVIRONMENT: 14,
    Reproducibility.CUSTOM_ENVIRONMENT_AND_HARDWARE: 9,
}

#: Sensor types cycled through the sensor-bug records so the dataset can
#: seed sensor-type-aware consumers (e.g. the BFI training prior).
_SENSOR_TYPE_CYCLE: Tuple[SensorType, ...] = (
    SensorType.GPS,
    SensorType.ACCELEROMETER,
    SensorType.GYROSCOPE,
    SensorType.COMPASS,
    SensorType.BAROMETER,
    SensorType.BATTERY,
)


def _reproducibility_for(root_cause: RootCause, index: int) -> Reproducibility:
    if root_cause == RootCause.SENSOR:
        cursor = index
        for reproducibility, count in _SENSOR_REPRODUCIBILITY_COUNTS.items():
            if cursor < count:
                return reproducibility
            cursor -= count
        return Reproducibility.CUSTOM_ENVIRONMENT
    # Non-sensor bugs: mostly reproducible under default settings, which
    # matches the paper's observation that semantic bugs were easy to hit.
    if index % 5 == 4:
        return Reproducibility.CUSTOM_ENVIRONMENT
    return Reproducibility.DEFAULT_SETTINGS


def build_dataset() -> List[BugRecord]:
    """Build the 215 analysed bug records."""
    records: List[BugRecord] = []
    serial = 0
    for root_cause, total in _ROOT_CAUSE_COUNTS.items():
        symptom_counts = dict(_SYMPTOM_COUNTS[root_cause])
        if sum(symptom_counts.values()) != total:
            raise AssertionError(
                f"symptom counts for {root_cause} do not add up to {total}"
            )
        index_within_cause = 0
        for symptom, count in symptom_counts.items():
            for _ in range(count):
                firmware = "ardupilot" if serial % 2 == 0 else "px4"
                sensor_type = (
                    _SENSOR_TYPE_CYCLE[index_within_cause % len(_SENSOR_TYPE_CYCLE)]
                    if root_cause == RootCause.SENSOR
                    else None
                )
                records.append(
                    BugRecord(
                        bug_id=f"{firmware.upper()}-STUDY-{serial:04d}",
                        firmware=firmware,
                        root_cause=root_cause,
                        reproducibility=_reproducibility_for(root_cause, index_within_cause),
                        symptom=symptom,
                        sensor_type=sensor_type,
                    )
                )
                serial += 1
                index_within_cause += 1
    if len(records) != 215:
        raise AssertionError(f"expected 215 analysed bugs, built {len(records)}")
    return records


def build_review() -> BugReview:
    """Build the full review object, including the pruned reports."""
    analysed = tuple(build_dataset())
    return BugReview(
        total_reviewed=394,
        ardupilot_reports=206,
        px4_reports=188,
        excluded_tooling=29,
        excluded_duplicates_or_unclear=150,
        analysed=analysed,
    )
