"""Analysis of the bug-study dataset: Findings 1-3 and Figure 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bugstudy.dataset import (
    BugRecord,
    Reproducibility,
    RootCause,
    Symptom,
    build_dataset,
)


@dataclass(frozen=True)
class BugStudySummary:
    """Aggregate statistics recomputed from the per-bug records."""

    total_bugs: int
    root_cause_counts: Dict[str, int]
    root_cause_shares: Dict[str, float]
    sensor_share_of_serious: float
    sensor_reproducibility_counts: Dict[str, int]
    sensor_default_reproducible_share: float
    sensor_symptom_counts: Dict[str, int]
    sensor_serious_share: float
    semantic_asymptomatic_share: float

    def figure3a_rows(self) -> List[tuple]:
        """Rows of Figure 3(A): bug counts per root-cause type."""
        return sorted(self.root_cause_counts.items())

    def figure3b_rows(self) -> List[tuple]:
        """Rows of Figure 3(B): sensor-bug reproducibility."""
        return sorted(self.sensor_reproducibility_counts.items())

    def figure3c_rows(self) -> List[tuple]:
        """Rows of Figure 3(C): sensor-bug outcomes."""
        return sorted(self.sensor_symptom_counts.items())


def _records(records: Optional[Sequence[BugRecord]]) -> List[BugRecord]:
    return list(records) if records is not None else build_dataset()


def finding1_sensor_bug_share(records: Optional[Sequence[BugRecord]] = None) -> Dict[str, float]:
    """Finding 1: sensor bugs are ~20 % of bugs, ~40 % of crash bugs."""
    bugs = _records(records)
    total = len(bugs)
    sensor = [bug for bug in bugs if bug.root_cause == RootCause.SENSOR]
    serious = [bug for bug in bugs if bug.is_serious]
    serious_sensor = [bug for bug in serious if bug.root_cause == RootCause.SENSOR]
    return {
        "sensor_share_of_all_bugs": len(sensor) / total,
        "semantic_share_of_all_bugs": sum(
            1 for bug in bugs if bug.root_cause == RootCause.SEMANTIC
        )
        / total,
        "sensor_share_of_serious_bugs": len(serious_sensor) / max(len(serious), 1),
    }


def finding2_reproducibility(records: Optional[Sequence[BugRecord]] = None) -> Dict[str, float]:
    """Finding 2: ~47 % of sensor bugs reproduce under default settings."""
    sensor_bugs = [bug for bug in _records(records) if bug.root_cause == RootCause.SENSOR]
    default = [
        bug
        for bug in sensor_bugs
        if bug.reproducibility == Reproducibility.DEFAULT_SETTINGS
    ]
    return {
        "sensor_bug_count": float(len(sensor_bugs)),
        "default_reproducible_share": len(default) / max(len(sensor_bugs), 1),
    }


def finding3_severity(records: Optional[Sequence[BugRecord]] = None) -> Dict[str, float]:
    """Finding 3: ~34 % of sensor bugs have serious symptoms."""
    bugs = _records(records)
    sensor_bugs = [bug for bug in bugs if bug.root_cause == RootCause.SENSOR]
    semantic_bugs = [bug for bug in bugs if bug.root_cause == RootCause.SEMANTIC]
    serious_sensor = [bug for bug in sensor_bugs if bug.is_serious]
    asymptomatic_semantic = [
        bug for bug in semantic_bugs if bug.symptom == Symptom.NO_SYMPTOMS
    ]
    return {
        "sensor_serious_share": len(serious_sensor) / max(len(sensor_bugs), 1),
        "semantic_asymptomatic_share": len(asymptomatic_semantic)
        / max(len(semantic_bugs), 1),
    }


def summarize(records: Optional[Sequence[BugRecord]] = None) -> BugStudySummary:
    """Recompute every Figure 3 / Finding statistic from the records."""
    bugs = _records(records)
    total = len(bugs)
    root_cause_counts = {
        cause.value: sum(1 for bug in bugs if bug.root_cause == cause)
        for cause in RootCause
    }
    sensor_bugs = [bug for bug in bugs if bug.root_cause == RootCause.SENSOR]
    finding1 = finding1_sensor_bug_share(bugs)
    finding2 = finding2_reproducibility(bugs)
    finding3 = finding3_severity(bugs)
    return BugStudySummary(
        total_bugs=total,
        root_cause_counts=root_cause_counts,
        root_cause_shares={
            cause: count / total for cause, count in root_cause_counts.items()
        },
        sensor_share_of_serious=finding1["sensor_share_of_serious_bugs"],
        sensor_reproducibility_counts={
            reproducibility.value: sum(
                1 for bug in sensor_bugs if bug.reproducibility == reproducibility
            )
            for reproducibility in Reproducibility
        },
        sensor_default_reproducible_share=finding2["default_reproducible_share"],
        sensor_symptom_counts={
            symptom.value: sum(1 for bug in sensor_bugs if bug.symptom == symptom)
            for symptom in Symptom
        },
        sensor_serious_share=finding3["sensor_serious_share"],
        semantic_asymptomatic_share=finding3["semantic_asymptomatic_share"],
    )
