"""Analysis helpers shared by the benchmarks and the examples.

Each helper regenerates the data behind one of the paper's figures; the
benchmark harnesses print the resulting rows/series and EXPERIMENTS.md
records how they compare with the published ones.
"""

from repro.analysis.figures import (
    AltitudeTrace,
    CaseStudyTraces,
    case_study_apm16021,
    case_study_apm16967,
    case_study_figure1,
    figure5_search_orders,
    figure6_pruning_counts,
    table1_feature_matrix,
)

__all__ = [
    "AltitudeTrace",
    "CaseStudyTraces",
    "case_study_apm16021",
    "case_study_apm16967",
    "case_study_figure1",
    "figure5_search_orders",
    "figure6_pruning_counts",
    "table1_feature_matrix",
]
