"""Regeneration of the paper's figures from the reproduction.

* Figures 1, 9 and 10 are altitude-over-time traces of specific case
  studies (the golden run against the fault-injected run).
* Figure 5 illustrates the fault-space search orders of DFS, BFS and
  SABRE on a two-sensor, five-time-step toy space.
* Figure 6 is the sensor-instance-symmetry arithmetic (21 -> 5 checks for
  three compasses).
* Table I is the qualitative feature matrix of the approaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration
from repro.core.pruning import symmetric_fault_count, unpruned_fault_count
from repro.core.runner import RunResult, TestRunner
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    SearchStrategy,
    StratifiedBFI,
)
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType
from repro.workloads.builtin import AutoWorkload, WaypointFenceWorkload


@dataclass
class AltitudeTrace:
    """An altitude-over-time series extracted from one run."""

    label: str
    times: List[float]
    altitudes: List[float]

    @property
    def peak_altitude(self) -> float:
        """The maximum altitude reached."""
        return max(self.altitudes) if self.altitudes else 0.0

    @property
    def final_altitude(self) -> float:
        """The altitude at the end of the (possibly aborted) run."""
        return self.altitudes[-1] if self.altitudes else 0.0


@dataclass
class CaseStudyTraces:
    """Golden-vs-faulted traces plus the run results behind them."""

    golden: AltitudeTrace
    faulted: AltitudeTrace
    golden_run: RunResult
    faulted_run: RunResult

    @property
    def unsafe(self) -> bool:
        """True when the faulted run produced an unsafe condition."""
        return self.faulted_run.found_unsafe_condition

    @property
    def crashed(self) -> bool:
        """True when the faulted run ended in a recorded collision."""
        return bool(self.faulted_run.collisions)


def _altitude_trace(label: str, result: RunResult) -> AltitudeTrace:
    return AltitudeTrace(
        label=label,
        times=[sample.time for sample in result.trace],
        altitudes=[sample.altitude for sample in result.trace],
    )


def _run_case_study(
    config: RunConfiguration, scenario: FaultScenario
) -> CaseStudyTraces:
    """Run the golden and faulted variants of one case study."""
    from repro.core.avis import Avis

    avis = Avis(config, profiling_runs=2)
    golden = avis.profiling_results[0]
    runner = TestRunner(config, monitor=avis.monitor)
    faulted = runner.run(scenario)
    return CaseStudyTraces(
        golden=_altitude_trace("golden run", golden),
        faulted=_altitude_trace("fault-injected run", faulted),
        golden_run=golden,
        faulted_run=faulted,
    )


def _transition_time(result: RunResult, label: str, default: float) -> float:
    for transition in result.mode_transitions:
        if transition.label == label:
            return transition.time
    return default


def case_study_figure1(altitude: float = 20.0) -> CaseStudyTraces:
    """Figure 1: an IMU failure at the end of the landing causes a crash.

    The accelerometer is failed just as the return-to-launch descent hands
    over to the landing mode; the firmware falls back to GPS-driven
    altitude whose reference is far too coarse near the ground.
    """
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(altitude=altitude),
    )
    golden_runner = TestRunner(config)
    golden = golden_runner.run()
    land_time = _transition_time(golden, "land", default=golden.duration_s * 0.7)
    scenario = FaultScenario(
        [FaultSpec(SensorId(SensorType.ACCELEROMETER, 0), land_time)]
    )
    return _run_case_study(config, scenario)


def case_study_apm16021(altitude: float = 20.0) -> CaseStudyTraces:
    """Figure 9: an accelerometer fault late in the takeoff climb.

    The vehicle overshoots the target altitude, the firmware overcorrects
    into a landing against a stale, too-high altitude model, and the
    vehicle hits the ground.
    """
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=altitude),
    )
    golden_runner = TestRunner(config)
    golden = golden_runner.run()
    takeoff_time = _transition_time(golden, "takeoff", default=3.0)
    # Inject the fault late in the climb (about 90 % of the way up, the
    # paper's case study injects at 18 m of a 20 m climb).
    climb_duration = 0.0
    for sample in golden.trace:
        if sample.altitude >= altitude * 0.9:
            climb_duration = sample.time - takeoff_time
            break
    injection_time = takeoff_time + max(climb_duration, 1.0)
    scenario = FaultScenario(
        [FaultSpec(SensorId(SensorType.ACCELEROMETER, 0), injection_time)]
    )
    return _run_case_study(config, scenario)


def case_study_apm16967(altitude: float = 20.0) -> CaseStudyTraces:
    """Figure 10: a compass failure between waypoints.

    The firmware navigates on an old heading, the land fail-safe engages,
    and the state-estimate reset near the end of the landing causes a
    crash.
    """
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(altitude=altitude),
    )
    golden_runner = TestRunner(config)
    golden = golden_runner.run()
    waypoint_time = _transition_time(golden, "waypoint-2", default=golden.duration_s * 0.4)
    scenario = FaultScenario(
        [FaultSpec(SensorId(SensorType.COMPASS, 0), waypoint_time + 1.0)]
    )
    return _run_case_study(config, scenario)


# ----------------------------------------------------------------------
# Figure 5: search orders on the toy fault space
# ----------------------------------------------------------------------
def figure5_search_orders(
    time_steps: int = 5, scenarios_per_strategy: int = 8
) -> Dict[str, List[str]]:
    """The first few scenarios explored by DFS, BFS and SABRE.

    The toy space matches Figure 5: two sensors (GPS and barometer) and
    ``time_steps`` injection times; SABRE's order assumes transitions at
    t1, t2 and t4 as in the figure.
    """
    gps = SensorId(SensorType.GPS, 0)
    baro = SensorId(SensorType.BAROMETER, 0)
    times = [float(index + 1) for index in range(time_steps)]

    def render(scenario: FaultScenario) -> str:
        if scenario.is_empty:
            return "<no faults>"
        return "; ".join(
            f"{fault.sensor_id.sensor_type.value}@t{int(fault.start_time)}"
            for fault in scenario
        )

    orders: Dict[str, List[str]] = {}
    dfs = list(DepthFirstSearch.enumerate_scenarios([gps, baro], times))
    bfs = list(BreadthFirstSearch.enumerate_scenarios([gps, baro], times))
    orders["depth-first"] = [render(s) for s in dfs[:scenarios_per_strategy]]
    orders["breadth-first"] = [render(s) for s in bfs[:scenarios_per_strategy]]

    # SABRE on the toy space: transitions at t1, t2 and t4 (Figure 5).
    transition_times = [1.0, 2.0, 4.0]
    sabre_order: List[str] = []
    subsets = [(gps,), (baro,), (gps, baro)]
    for time in transition_times:
        for subset in subsets:
            scenario = FaultScenario(FaultSpec(sensor, time) for sensor in subset)
            sabre_order.append(render(scenario))
            if len(sabre_order) >= scenarios_per_strategy:
                break
        if len(sabre_order) >= scenarios_per_strategy:
            break
    orders["sabre"] = sabre_order
    return orders


# ----------------------------------------------------------------------
# Figure 6: sensor-instance symmetry arithmetic
# ----------------------------------------------------------------------
def figure6_pruning_counts(max_instances: int = 5) -> List[Tuple[int, int, int]]:
    """Rows of (instance count, unpruned checks, symmetric checks).

    For three compasses the row reads (3, 21, 5), the numbers quoted in
    the paper's Figure 6 discussion.
    """
    return [
        (count, unpruned_fault_count(count), symmetric_fault_count(count))
        for count in range(1, max_instances + 1)
    ]


# ----------------------------------------------------------------------
# Table I: qualitative feature matrix
# ----------------------------------------------------------------------
def table1_feature_matrix() -> List[Tuple[str, str, str, str]]:
    """Rows of (approach, targets transitions, prior bugs, dissimilar first)."""
    strategies: Sequence[SearchStrategy] = (
        AvisStrategy(),
        StratifiedBFI(),
        BayesianFaultInjection(),
        RandomInjection(),
    )
    rows = []
    for strategy in strategies:
        features = strategy.features.as_row()
        rows.append((strategy.name, features[0], features[1], features[2]))
    return rows
