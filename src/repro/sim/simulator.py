"""Lock-step simulator: the substrate equivalent of SITL + Gazebo.

Figure 7 of the paper shows one time-step of the Avis process: the
workload calls ``step()``, the simulator advances time, sensors are
simulated, faults are injected, the firmware produces actuator outputs,
and the vehicle state is updated.  :class:`Simulator` owns steps 2, 3
(via the sensor suite it feeds), 5 and 6 of that loop and records the
events the invariant monitor consumes (collisions, fence breaches,
firmware process death).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.environment import Environment, FenceRegion, Obstacle, default_environment
from repro.sim.physics import HARD_IMPACT_SPEED, ActuatorCommand, QuadrotorPhysics
from repro.sim.state import VehicleState
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters


@dataclass(frozen=True)
class CollisionEvent:
    """A physical collision detected by the simulator.

    The paper's safety invariant flags a collision when the vehicle
    "rapidly (de)accelerates but has the same position as another
    simulated object, e.g. the ground".  We record both the obstacle (or
    ground) involved and the impact speed so reports can describe the
    severity of the event.
    """

    time: float
    position: tuple
    impact_speed: float
    obstacle: Optional[str] = None

    @property
    def with_ground(self) -> bool:
        """True when the collision was with the ground plane."""
        return self.obstacle is None

    def describe(self) -> str:
        """Human-readable one-line description for reports."""
        target = self.obstacle if self.obstacle else "ground"
        return (
            f"collision with {target} at t={self.time:.2f}s, "
            f"impact speed {self.impact_speed:.2f} m/s"
        )


@dataclass(frozen=True)
class FenceBreachEvent:
    """The vehicle entered a keep-out fence region."""

    time: float
    position: tuple
    fence: str


@dataclass
class SimulationClock:
    """Fixed-step simulation clock shared by every component.

    The paper advances simulated time by a fixed unit per ``step()``
    call; keeping the clock in one object lets the firmware, sensors and
    monitor agree on "now" without asking the physics engine.
    """

    dt: float = 0.01
    _ticks: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")

    @property
    def time(self) -> float:
        """Current simulation time in seconds."""
        return self._ticks * self.dt

    @property
    def ticks(self) -> int:
        """Number of elapsed time-steps."""
        return self._ticks

    def advance(self) -> float:
        """Advance the clock by one step and return the new time."""
        self._ticks += 1
        return self.time


class Simulator:
    """Owns the physical world and the vehicle dynamics.

    The simulator exposes exactly the interface the rest of the stack
    needs:

    * :meth:`step` -- integrate one time-step given the firmware's
      actuator command and return the new :class:`VehicleState`.
    * :attr:`state` -- the latest state snapshot (step 3 of Figure 7
      reads sensor values from it).
    * :attr:`collisions` / :attr:`fence_breaches` -- the event log the
      invariant monitor inspects.
    """

    def __init__(
        self,
        airframe: AirframeParameters = IRIS_QUADCOPTER,
        environment: Optional[Environment] = None,
        dt: float = 0.01,
    ) -> None:
        self.airframe = airframe
        self.environment = environment if environment is not None else default_environment()
        self.clock = SimulationClock(dt=dt)
        self.physics = QuadrotorPhysics(
            airframe=airframe, environment=self.environment, dt=dt
        )
        self._state = self.physics.snapshot()
        self._collisions: List[CollisionEvent] = []
        self._fence_breaches: List[FenceBreachEvent] = []
        self._was_airborne = False
        self._step_listeners: List[Callable[[VehicleState], None]] = []

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def state(self) -> VehicleState:
        """The most recent vehicle state snapshot."""
        return self._state

    @property
    def dt(self) -> float:
        """Simulation time-step in seconds."""
        return self.clock.dt

    @property
    def time(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.time

    @property
    def collisions(self) -> List[CollisionEvent]:
        """Collisions recorded so far (ground impacts and obstacle hits)."""
        return list(self._collisions)

    @property
    def fence_breaches(self) -> List[FenceBreachEvent]:
        """Fence breach events recorded so far."""
        return list(self._fence_breaches)

    @property
    def has_crashed(self) -> bool:
        """True when at least one collision has been recorded."""
        return bool(self._collisions)

    def add_step_listener(self, listener: Callable[[VehicleState], None]) -> None:
        """Register a callback invoked with the state after every step."""
        self._step_listeners.append(listener)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, command: ActuatorCommand) -> VehicleState:
        """Advance the world by one time-step under ``command``."""
        previous_airborne = not self._state.on_ground
        self._state = self.physics.step(command)
        self.clock.advance()

        self._detect_ground_impact(previous_airborne)
        self._detect_obstacle_collision()
        self._detect_fence_breach()

        for listener in self._step_listeners:
            listener(self._state)
        return self._state

    def _detect_ground_impact(self, previously_airborne: bool) -> None:
        """Record a collision when the vehicle hits the ground hard."""
        if not previously_airborne or not self._state.on_ground:
            return
        impact_speed = self.physics.last_impact_speed
        if impact_speed >= HARD_IMPACT_SPEED:
            self._collisions.append(
                CollisionEvent(
                    time=self._state.time,
                    position=self._state.position,
                    impact_speed=impact_speed,
                    obstacle=None,
                )
            )

    def _detect_obstacle_collision(self) -> None:
        """Record a collision when the vehicle penetrates an obstacle."""
        obstacle = self.environment.colliding_obstacle(self._state.position)
        if obstacle is None:
            return
        speed = max(self._state.ground_speed, abs(self._state.climb_rate))
        self._collisions.append(
            CollisionEvent(
                time=self._state.time,
                position=self._state.position,
                impact_speed=speed,
                obstacle=obstacle.name,
            )
        )

    def _detect_fence_breach(self) -> None:
        """Record a breach when the vehicle enters a keep-out region."""
        if self._state.on_ground:
            return
        fence = self.environment.breached_fence(self._state.position)
        if fence is None:
            return
        if self._fence_breaches and self._fence_breaches[-1].fence == fence.name:
            # Still inside the same fence; one event per entry is enough.
            return
        self._fence_breaches.append(
            FenceBreachEvent(
                time=self._state.time, position=self._state.position, fence=fence.name
            )
        )
