"""Lock-step simulator: the substrate equivalent of SITL + Gazebo.

Figure 7 of the paper shows one time-step of the Avis process: the
workload calls ``step()``, the simulator advances time, sensors are
simulated, faults are injected, the firmware produces actuator outputs,
and the vehicle state is updated.  :class:`Simulator` owns steps 2, 3
(via the sensor suite it feeds), 5 and 6 of that loop and records the
events the invariant monitor consumes (collisions, fence breaches,
firmware process death).

The simulator hosts a *fleet* of one or more vehicles sharing a single
environment and clock.  The classic single-vehicle interface
(:meth:`step`, :attr:`state`, the event logs) is untouched and, for
fleet size 1, behaviourally identical to the pre-fleet simulator; fleet
runs use :meth:`step_fleet` / :attr:`states` and additionally produce
inter-vehicle :class:`ProximityEvent` records plus a running minimum
pairwise separation used to calibrate the separation invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.environment import Environment, FenceRegion, Obstacle, default_environment
from repro.sim.fleet_physics import FleetPhysics
from repro.sim.physics import HARD_IMPACT_SPEED, ActuatorCommand, QuadrotorPhysics
from repro.sim.state import VehicleState
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters

#: Default east spacing between fleet launch pads, in metres.
DEFAULT_PAD_SPACING_M = 8.0

#: Physics stepping modes the simulator supports.  ``reference`` is the
#: original one-``QuadrotorPhysics``-object-per-vehicle loop, kept
#: verbatim; ``soa`` advances the whole fleet through one
#: :class:`~repro.sim.fleet_physics.FleetPhysics` step over flat arrays.
#: The two are pinned bit-identical (states, event logs) by
#: ``tests/test_fast_core.py``.
SIMULATOR_STEPPERS = ("reference", "soa")


@dataclass(frozen=True)
class CollisionEvent:
    """A physical collision detected by the simulator.

    The paper's safety invariant flags a collision when the vehicle
    "rapidly (de)accelerates but has the same position as another
    simulated object, e.g. the ground".  We record both the obstacle (or
    ground) involved and the impact speed so reports can describe the
    severity of the event.  ``vehicle`` identifies the fleet member
    involved (always 0 for classic single-vehicle runs).
    """

    time: float
    position: tuple
    impact_speed: float
    obstacle: Optional[str] = None
    vehicle: int = 0

    @property
    def with_ground(self) -> bool:
        """True when the collision was with the ground plane."""
        return self.obstacle is None

    def describe(self) -> str:
        """Human-readable one-line description for reports."""
        target = self.obstacle if self.obstacle else "ground"
        prefix = f"vehicle {self.vehicle} " if self.vehicle else ""
        return (
            f"{prefix}collision with {target} at t={self.time:.2f}s, "
            f"impact speed {self.impact_speed:.2f} m/s"
        )


@dataclass(frozen=True)
class FenceBreachEvent:
    """A vehicle entered a keep-out fence region."""

    time: float
    position: tuple
    fence: str
    vehicle: int = 0


@dataclass(frozen=True)
class ProximityEvent:
    """Two airborne fleet members came dangerously close.

    One event is recorded per conflict *entry*: the pair must separate
    beyond the threshold again before a new event can be recorded, the
    same one-event-per-entry policy the fence breach log uses.
    """

    time: float
    vehicle_a: int
    vehicle_b: int
    distance_m: float
    position_a: tuple
    position_b: tuple

    def describe(self) -> str:
        """Human-readable one-line description for reports."""
        return (
            f"vehicles {self.vehicle_a} and {self.vehicle_b} within "
            f"{self.distance_m:.2f} m at t={self.time:.2f}s"
        )


@dataclass
class SimulationClock:
    """Fixed-step simulation clock shared by every component.

    The paper advances simulated time by a fixed unit per ``step()``
    call; keeping the clock in one object lets the firmware, sensors and
    monitor agree on "now" without asking the physics engine.
    """

    dt: float = 0.01
    _ticks: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")

    @property
    def time(self) -> float:
        """Current simulation time in seconds."""
        return self._ticks * self.dt

    @property
    def ticks(self) -> int:
        """Number of elapsed time-steps."""
        return self._ticks

    def advance(self) -> float:
        """Advance the clock by one step and return the new time."""
        self._ticks += 1
        return self.time


class Simulator:
    """Owns the physical world and the dynamics of a fleet of vehicles.

    The simulator exposes exactly the interface the rest of the stack
    needs:

    * :meth:`step` / :meth:`step_fleet` -- integrate one time-step given
      the firmware actuator command(s) and return the new state(s).
    * :attr:`state` / :attr:`states` -- the latest state snapshot(s)
      (step 3 of Figure 7 reads sensor values from them).
    * :attr:`collisions` / :attr:`fence_breaches` /
      :attr:`proximity_events` -- the event log the invariant monitor
      inspects.
    """

    def __init__(
        self,
        airframe: AirframeParameters = IRIS_QUADCOPTER,
        environment: Optional[Environment] = None,
        dt: float = 0.01,
        fleet_size: int = 1,
        pad_spacing_m: float = DEFAULT_PAD_SPACING_M,
        proximity_threshold_m: float = 0.0,
        airframes: Optional[Sequence[AirframeParameters]] = None,
        stepper: str = "reference",
    ) -> None:
        if fleet_size < 1:
            raise ValueError("a simulation needs at least one vehicle")
        if stepper not in SIMULATOR_STEPPERS:
            raise ValueError(
                f"unknown stepper {stepper!r}; expected one of {SIMULATOR_STEPPERS}"
            )
        if airframes is not None:
            airframes = list(airframes)
            if len(airframes) != fleet_size:
                raise ValueError("one airframe per fleet member required")
            airframe = airframes[0]
        else:
            airframes = [airframe] * fleet_size
        self.airframe = airframe
        self.airframes: List[AirframeParameters] = airframes
        self.environment = environment if environment is not None else default_environment()
        self.clock = SimulationClock(dt=dt)
        self.fleet_size = fleet_size
        self.pad_spacing_m = pad_spacing_m
        self.proximity_threshold_m = proximity_threshold_m

        self.stepper = stepper
        self._fleet_physics: List[QuadrotorPhysics] = []
        self._fleet: Optional[FleetPhysics] = None
        self._states: List[VehicleState] = []
        if stepper == "soa":
            self._fleet = FleetPhysics(
                airframes=airframes, environment=self.environment, dt=dt
            )
            for vehicle in range(1, fleet_size):
                north, east = self.pad_offset(vehicle)
                self._fleet.teleport(
                    vehicle, (north, east, self.environment.terrain_height(north, east))
                )
            self._states = self._fleet.snapshots()
        else:
            for vehicle in range(fleet_size):
                physics = QuadrotorPhysics(
                    airframe=airframes[vehicle], environment=self.environment, dt=dt
                )
                if vehicle > 0:
                    north, east = self.pad_offset(vehicle)
                    physics.teleport(
                        (north, east, self.environment.terrain_height(north, east))
                    )
                self._fleet_physics.append(physics)
                self._states.append(physics.snapshot())

        self._collisions: List[CollisionEvent] = []
        self._fence_breaches: List[FenceBreachEvent] = []
        self._proximity_events: List[ProximityEvent] = []
        self._last_fence: List[Optional[str]] = [None] * fleet_size
        self._pairs_in_conflict: Dict[Tuple[int, int], bool] = {}
        self._min_separation: Optional[float] = None
        self._step_listeners: List[Callable[[VehicleState], None]] = []

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def physics(self) -> QuadrotorPhysics:
        """Vehicle 0's physics engine (the classic single-vehicle view).

        Only the reference stepper hosts per-vehicle physics objects;
        the SoA stepper keeps the whole fleet in one
        :class:`~repro.sim.fleet_physics.FleetPhysics` (see
        :attr:`fleet`).
        """
        if self._fleet is not None:
            raise AttributeError(
                "the SoA stepper has no per-vehicle physics objects; "
                "use Simulator.fleet"
            )
        return self._fleet_physics[0]

    @property
    def fleet(self) -> Optional[FleetPhysics]:
        """The batched physics core (SoA stepper only, else ``None``)."""
        return self._fleet

    @property
    def state(self) -> VehicleState:
        """The most recent state snapshot of vehicle 0."""
        return self._states[0]

    @property
    def states(self) -> List[VehicleState]:
        """The most recent state snapshot of every fleet member."""
        return list(self._states)

    def state_of(self, vehicle: int) -> VehicleState:
        """The most recent state snapshot of one fleet member."""
        return self._states[vehicle]

    def pad_offset(self, vehicle: int) -> Tuple[float, float]:
        """(north, east) launch-pad offset of a fleet member from home."""
        return (0.0, vehicle * self.pad_spacing_m)

    @property
    def dt(self) -> float:
        """Simulation time-step in seconds."""
        return self.clock.dt

    @property
    def time(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.time

    @property
    def collisions(self) -> List[CollisionEvent]:
        """Collisions recorded so far (ground impacts and obstacle hits)."""
        return list(self._collisions)

    @property
    def fence_breaches(self) -> List[FenceBreachEvent]:
        """Fence breach events recorded so far."""
        return list(self._fence_breaches)

    @property
    def proximity_events(self) -> List[ProximityEvent]:
        """Inter-vehicle proximity conflicts recorded so far."""
        return list(self._proximity_events)

    @property
    def proximity_event_count(self) -> int:
        """Number of proximity conflicts recorded so far (no copy)."""
        return len(self._proximity_events)

    @property
    def min_separation_m(self) -> Optional[float]:
        """Smallest airborne pairwise separation seen so far (fleet runs).

        ``None`` for single-vehicle simulations and for fleet runs where
        no two vehicles have been airborne together yet.  Fault-free
        profiling runs expose this to the invariant monitor, which
        calibrates the minimum-separation threshold from it.
        """
        return self._min_separation

    @property
    def has_crashed(self) -> bool:
        """True when at least one collision has been recorded."""
        return bool(self._collisions)

    def safety_events(self) -> list:
        """Flight-recorder events for every safety occurrence so far.

        Collisions, fence breaches and proximity conflicts as one
        time-ordered stream, for the per-run flight log.
        """
        from repro.obs.recorder import FlightEvent

        events = []
        for collision in self._collisions:
            target = collision.obstacle if collision.obstacle else "ground"
            events.append(
                FlightEvent(
                    collision.time,
                    "safety.collision",
                    f"{target} at {collision.impact_speed:.2f} m/s",
                    vehicle=f"v{collision.vehicle}",
                )
            )
        for breach in self._fence_breaches:
            events.append(
                FlightEvent(
                    breach.time,
                    "safety.fence_breach",
                    breach.fence,
                    vehicle=f"v{breach.vehicle}",
                )
            )
        for conflict in self._proximity_events:
            events.append(
                FlightEvent(
                    conflict.time,
                    "proximity.conflict",
                    f"v{conflict.vehicle_a}/v{conflict.vehicle_b} "
                    f"within {conflict.distance_m:.2f} m",
                )
            )
        events.sort(key=lambda event: (event.time_s, event.kind))
        return events

    def add_step_listener(self, listener: Callable[[VehicleState], None]) -> None:
        """Register a callback invoked with vehicle 0's state after every step."""
        self._step_listeners.append(listener)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, command: ActuatorCommand) -> VehicleState:
        """Advance a single-vehicle world by one time-step under ``command``."""
        return self.step_fleet([command])[0]

    def step_fleet(self, commands: Sequence[ActuatorCommand]) -> List[VehicleState]:
        """Advance the whole fleet by one time-step, one command per vehicle."""
        if len(commands) != self.fleet_size:
            raise ValueError(
                f"expected {self.fleet_size} command(s), got {len(commands)}"
            )
        if self._fleet is not None:
            return self._step_fleet_soa(commands)
        previously_airborne = [not state.on_ground for state in self._states]
        for vehicle, command in enumerate(commands):
            self._states[vehicle] = self._fleet_physics[vehicle].step(command)
        self.clock.advance()

        for vehicle in range(self.fleet_size):
            self._detect_ground_impact(vehicle, previously_airborne[vehicle])
            self._detect_obstacle_collision(vehicle)
            self._detect_fence_breach(vehicle)
        if self.fleet_size > 1:
            self._track_separation()

        for listener in self._step_listeners:
            listener(self._states[0])
        return list(self._states)

    def _step_fleet_soa(self, commands: Sequence[ActuatorCommand]) -> List[VehicleState]:
        """One time-step through the batched SoA physics core.

        Identical detection pipeline to the reference path; the only
        difference is that ground impacts are read off the fleet core's
        per-step touchdown records instead of per-object impact state
        (the records carry the same time/position/speed, so the emitted
        events are bit-identical).
        """
        self._states = self._fleet.step_all(commands)
        self.clock.advance()

        for vehicle in range(self.fleet_size):
            touchdown = self._fleet.step_touchdown(vehicle)
            if touchdown is not None and touchdown.speed >= HARD_IMPACT_SPEED:
                self._collisions.append(
                    CollisionEvent(
                        time=touchdown.time,
                        position=touchdown.position,
                        impact_speed=touchdown.speed,
                        obstacle=None,
                        vehicle=vehicle,
                    )
                )
            self._detect_obstacle_collision(vehicle)
            self._detect_fence_breach(vehicle)
        if self.fleet_size > 1:
            self._track_separation()

        for listener in self._step_listeners:
            listener(self._states[0])
        return list(self._states)

    def teleport_vehicle(
        self,
        vehicle: int,
        position: Tuple[float, float, float],
        velocity: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> None:
        """Place one fleet member (works under either stepper)."""
        if self._fleet is not None:
            self._fleet.teleport(vehicle, position, velocity)
            self._states[vehicle] = self._fleet.snapshot(vehicle)
        else:
            self._fleet_physics[vehicle].teleport(position, velocity)
            self._states[vehicle] = self._fleet_physics[vehicle].snapshot()

    def _detect_ground_impact(self, vehicle: int, previously_airborne: bool) -> None:
        """Record a collision when a vehicle hits the ground hard."""
        state = self._states[vehicle]
        if not previously_airborne or not state.on_ground:
            return
        impact_speed = self._fleet_physics[vehicle].last_impact_speed
        if impact_speed >= HARD_IMPACT_SPEED:
            self._collisions.append(
                CollisionEvent(
                    time=state.time,
                    position=state.position,
                    impact_speed=impact_speed,
                    obstacle=None,
                    vehicle=vehicle,
                )
            )

    def _detect_obstacle_collision(self, vehicle: int) -> None:
        """Record a collision when a vehicle penetrates an obstacle."""
        state = self._states[vehicle]
        obstacle = self.environment.colliding_obstacle(state.position)
        if obstacle is None:
            return
        speed = max(state.ground_speed, abs(state.climb_rate))
        self._collisions.append(
            CollisionEvent(
                time=state.time,
                position=state.position,
                impact_speed=speed,
                obstacle=obstacle.name,
                vehicle=vehicle,
            )
        )

    def _detect_fence_breach(self, vehicle: int) -> None:
        """Record a breach when a vehicle enters a keep-out region."""
        state = self._states[vehicle]
        if state.on_ground:
            return
        fence = self.environment.breached_fence(state.position)
        if fence is None:
            return
        if self._last_fence[vehicle] == fence.name:
            # Still inside the same fence; one event per entry is enough.
            return
        self._last_fence[vehicle] = fence.name
        self._fence_breaches.append(
            FenceBreachEvent(
                time=state.time,
                position=state.position,
                fence=fence.name,
                vehicle=vehicle,
            )
        )

    def _track_separation(self) -> None:
        """Track pairwise separation and record proximity conflicts.

        Only pairs with both members airborne count: vehicles parked on
        neighbouring launch pads are not a loss of separation, and a
        landed vehicle is no longer traffic.
        """
        threshold = self.proximity_threshold_m
        for a in range(self.fleet_size):
            state_a = self._states[a]
            if state_a.on_ground:
                continue
            for b in range(a + 1, self.fleet_size):
                state_b = self._states[b]
                if state_b.on_ground:
                    continue
                distance = math.dist(state_a.position, state_b.position)
                if self._min_separation is None or distance < self._min_separation:
                    self._min_separation = distance
                if threshold <= 0.0:
                    continue
                pair = (a, b)
                if distance < threshold:
                    if not self._pairs_in_conflict.get(pair, False):
                        self._pairs_in_conflict[pair] = True
                        self._proximity_events.append(
                            ProximityEvent(
                                time=state_a.time,
                                vehicle_a=a,
                                vehicle_b=b,
                                distance_m=distance,
                                position_a=state_a.position,
                                position_b=state_b.position,
                            )
                        )
                else:
                    self._pairs_in_conflict[pair] = False
