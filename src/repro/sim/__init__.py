"""Flight simulator substrate.

The paper runs ArduPilot / PX4 against Gazebo in lock-step: at every
simulation time-step the simulator produces the vehicle's physical state,
sensor models synthesise readings from it, the firmware computes actuator
outputs, and the simulator integrates the dynamics forward.  This package
provides the Python equivalent of that loop:

* :mod:`repro.sim.state` -- the vehicle's physical state (position,
  velocity, acceleration, attitude, rates) expressed in a local NED-like
  frame with *up-positive* altitude for readability.
* :mod:`repro.sim.physics` -- quadcopter dynamics integrated with a fixed
  step (default 10 ms), including ground contact and a simple drag model.
* :mod:`repro.sim.vehicle` -- airframe parameter sets; the default is the
  3DR Iris quadcopter used for every experiment in the paper.
* :mod:`repro.sim.environment` -- the physical world: ground plane,
  obstacles, geo-fences, wind, and home location.
* :mod:`repro.sim.simulator` -- the lock-step stepper that ties physics,
  environment, and collision detection together and exposes the
  ``step()`` interface Avis drives (Figure 7 of the paper).
"""

from repro.sim.environment import Environment, FenceRegion, Obstacle, Wind
from repro.sim.fleet_physics import FleetPhysics, Touchdown, numpy_available
from repro.sim.physics import QuadrotorPhysics
from repro.sim.planner import StepPlanner
from repro.sim.simulator import CollisionEvent, SimulationClock, Simulator
from repro.sim.state import AttitudeState, VehicleState
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters

__all__ = [
    "AirframeParameters",
    "AttitudeState",
    "CollisionEvent",
    "Environment",
    "FenceRegion",
    "FleetPhysics",
    "IRIS_QUADCOPTER",
    "Obstacle",
    "QuadrotorPhysics",
    "SimulationClock",
    "Simulator",
    "StepPlanner",
    "Touchdown",
    "VehicleState",
    "Wind",
    "numpy_available",
]
