"""Structure-of-arrays batched physics: one step advances the whole fleet.

:class:`repro.sim.physics.QuadrotorPhysics` integrates one vehicle per
object; a fleet of N vehicles costs N python-object dispatches per
time-step plus N separate traversals of the same environment queries.
:class:`FleetPhysics` keeps the state of every fleet member in flat
per-component arrays (``position_north[v]``, ``velocity_east[v]``, ...)
and advances all of them in a single call.

Two interchangeable kernels integrate the arrays:

* ``python`` -- plain per-vehicle loops over the flat lists.  Always
  available.
* ``numpy`` -- the element-wise arithmetic is vectorised with numpy
  (installed via the optional ``repro-avis[fast]`` extra).  Transcendental
  functions (``sin``/``cos``/angle wrapping) are still evaluated with
  :mod:`math` per element: numpy's SIMD trig may differ from libm in the
  last ulp, and the contract of this module is that **both kernels
  reproduce the reference integrator bit for bit** -- results never
  depend on whether numpy is importable.

Both kernels execute the exact arithmetic of
:meth:`QuadrotorPhysics.step` in the exact same order per vehicle
(first-order attitude lag, body-z thrust decomposition, linear drag,
Euler integration, ground clamp), so a fleet stepped here produces
bit-identical trajectories, impact speeds and timestamps to a list of
``QuadrotorPhysics`` objects stepped one by one -- pinned by the
bit-identity suite in ``tests/test_fast_core.py``.

Air-to-ground transitions are additionally recorded as
:class:`Touchdown` events so a caller fusing several micro-steps into
one macro-step (:meth:`FleetPhysics.step_held`) can still attribute a
hard impact to the exact micro-step it happened on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.environment import Environment
from repro.sim.physics import GRAVITY, ActuatorCommand
from repro.sim.state import AttitudeState, VehicleState, Vector3, wrap_angle
from repro.sim.vehicle import AirframeParameters

try:  # pragma: no cover - exercised by the numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the plain CI legs
    _np = None


def numpy_available() -> bool:
    """True when the optional numpy kernel can be used on this host."""
    return _np is not None


def default_backend() -> str:
    """The kernel picked when the caller does not force one."""
    return "numpy" if _np is not None else "python"


#: Fleets smaller than this integrate through the python kernel even
#: when numpy is importable: per-step ndarray construction costs more
#: than it vectorises away until the fleet is this wide (measured ~3x
#: slower than the plain loops at fleet size 2).  Both kernels are
#: bit-identical, so the cutover is invisible to results.
NUMPY_MIN_FLEET = 8


@dataclass(frozen=True)
class Touchdown:
    """One air-to-ground transition of one fleet member.

    ``time`` is the post-step timestamp (the same value the state
    snapshot of that micro-step carries), ``speed`` the downward
    velocity at contact, and ``position`` the terrain-clamped contact
    point -- exactly the fields the simulator's ground-impact detector
    derives from a :class:`QuadrotorPhysics` step.
    """

    time: float
    vehicle: int
    speed: float
    position: Tuple[float, float, float]


class FleetPhysics:
    """Fixed-step integrator advancing every fleet member in one call."""

    def __init__(
        self,
        airframes: Sequence[AirframeParameters],
        environment: Environment,
        dt: float = 0.01,
        attitude_time_constant: float = 0.15,
        backend: Optional[str] = None,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if not airframes:
            raise ValueError("a fleet needs at least one airframe")
        if backend is None:
            backend = (
                default_backend() if len(airframes) >= NUMPY_MIN_FLEET else "python"
            )
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown physics backend {backend!r}")
        if backend == "numpy" and _np is None:
            raise ValueError(
                "the numpy physics backend needs numpy installed "
                "(pip install 'repro-avis[fast]')"
            )
        self.environment = environment
        self.dt = dt
        self.attitude_time_constant = attitude_time_constant
        self._backend = backend
        self._airframes: List[AirframeParameters] = list(airframes)
        n = len(self._airframes)
        self._n = n

        # Per-airframe parameter arrays.
        self._mass = [frame.mass_kg for frame in self._airframes]
        self._drag = [frame.drag_coefficient for frame in self._airframes]
        self._max_thrust = [frame.max_thrust_n for frame in self._airframes]

        # Flat per-component state arrays (index = fleet member).
        start_height = environment.terrain_height(0.0, 0.0)
        self._time = 0.0
        self._pos_n = [0.0] * n
        self._pos_e = [0.0] * n
        self._pos_u = [start_height] * n
        self._vel_n = [0.0] * n
        self._vel_e = [0.0] * n
        self._vel_u = [0.0] * n
        self._acc_n = [0.0] * n
        self._acc_e = [0.0] * n
        self._acc_u = [0.0] * n
        self._att_roll = [0.0] * n
        self._att_pitch = [0.0] * n
        self._att_yaw = [0.0] * n
        self._rate_roll = [0.0] * n
        self._rate_pitch = [0.0] * n
        self._rate_yaw = [0.0] * n
        self._on_ground = [True] * n
        self._armed = [False] * n
        self._last_impact = [0.0] * n

        #: Touchdowns of the most recent micro-step, one slot per vehicle.
        self._step_touchdowns: List[Optional[Touchdown]] = [None] * n
        #: Every touchdown since the last :meth:`drain_touchdowns`.
        self._touchdown_log: List[Touchdown] = []

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The integration kernel in use (``python`` or ``numpy``)."""
        return self._backend

    @property
    def fleet_size(self) -> int:
        """Number of vehicles advanced per step."""
        return self._n

    @property
    def time(self) -> float:
        """Current simulation time in seconds (shared by the fleet)."""
        return self._time

    def last_impact_speed(self, vehicle: int = 0) -> float:
        """Vertical speed (m/s) recorded at a vehicle's last ground contact."""
        return self._last_impact[vehicle]

    def snapshot(self, vehicle: int = 0) -> VehicleState:
        """Immutable state snapshot of one fleet member."""
        v = vehicle
        return VehicleState(
            time=self._time,
            position=(self._pos_n[v], self._pos_e[v], self._pos_u[v]),
            velocity=(self._vel_n[v], self._vel_e[v], self._vel_u[v]),
            acceleration=(self._acc_n[v], self._acc_e[v], self._acc_u[v]),
            attitude=AttitudeState(
                self._att_roll[v], self._att_pitch[v], self._att_yaw[v]
            ),
            angular_rate=(self._rate_roll[v], self._rate_pitch[v], self._rate_yaw[v]),
            on_ground=self._on_ground[v],
            armed=self._armed[v],
        )

    def snapshots(self) -> List[VehicleState]:
        """State snapshots of every fleet member, in index order."""
        return [self.snapshot(vehicle) for vehicle in range(self._n)]

    def step_touchdown(self, vehicle: int) -> Optional[Touchdown]:
        """The touchdown a vehicle made on the most recent micro-step."""
        return self._step_touchdowns[vehicle]

    def drain_touchdowns(self) -> List[Touchdown]:
        """All touchdowns since the last drain (oldest first)."""
        drained = self._touchdown_log
        self._touchdown_log = []
        return drained

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_all(self, commands: Sequence[ActuatorCommand]) -> List[VehicleState]:
        """Advance every vehicle by one time-step, one command per vehicle."""
        if len(commands) != self._n:
            raise ValueError(f"expected {self._n} command(s), got {len(commands)}")
        clamped = [
            command.clamped(self._airframes[vehicle])
            for vehicle, command in enumerate(commands)
        ]
        self._step_once(clamped)
        return self.snapshots()

    def step_held(
        self, commands: Sequence[ActuatorCommand], count: int
    ) -> List[VehicleState]:
        """Advance ``count`` micro-steps holding ``commands`` throughout.

        The fused form of :meth:`step_all`: commands are clamped once and
        re-applied every micro-step.  Touchdowns are recorded per
        micro-step with their exact timestamps, so a hard impact inside
        the window is attributed to the step it happened on.
        """
        if len(commands) != self._n:
            raise ValueError(f"expected {self._n} command(s), got {len(commands)}")
        clamped = [
            command.clamped(self._airframes[vehicle])
            for vehicle, command in enumerate(commands)
        ]
        for _ in range(count):
            self._step_once(clamped)
        return self.snapshots()

    def teleport(
        self, vehicle: int, position: Vector3, velocity: Vector3 = (0.0, 0.0, 0.0)
    ) -> None:
        """Place one vehicle at ``position`` (launch pads, unit tests)."""
        self._pos_n[vehicle], self._pos_e[vehicle], self._pos_u[vehicle] = position
        self._vel_n[vehicle], self._vel_e[vehicle], self._vel_u[vehicle] = velocity
        self._on_ground[vehicle] = self.environment.is_below_ground(tuple(position))

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _step_once(self, clamped: Sequence[ActuatorCommand]) -> None:
        # The wind field is a pure function of time shared by the fleet:
        # one evaluation replaces the per-vehicle calls of the reference
        # integrator (which all see the same pre-step time).
        wind_north, wind_east = self.environment.wind.velocity_at(self._time)
        if self._backend == "numpy":
            self._integrate_numpy(clamped, wind_north, wind_east)
        else:
            self._integrate_python(clamped, wind_north, wind_east)
        self._ground_contact()
        self._time += self.dt

    def _integrate_python(
        self, clamped: Sequence[ActuatorCommand], wind_north: float, wind_east: float
    ) -> None:
        """Reference arithmetic over the flat arrays, per-vehicle loop."""
        dt = self.dt
        alpha = min(dt / self.attitude_time_constant, 1.0)
        for v in range(self._n):
            command = clamped[v]
            armed = command.armed
            self._armed[v] = armed

            # First-order attitude lag (disarmed motors relax to level).
            if not armed:
                target_roll = 0.0
                target_pitch = 0.0
            else:
                target_roll = command.target_roll
                target_pitch = command.target_pitch
            prev_roll = self._att_roll[v]
            prev_pitch = self._att_pitch[v]
            prev_yaw = self._att_yaw[v]
            self._att_roll[v] += (target_roll - self._att_roll[v]) * alpha
            self._att_pitch[v] += (target_pitch - self._att_pitch[v]) * alpha
            if armed and not self._on_ground[v]:
                self._att_yaw[v] = wrap_angle(
                    self._att_yaw[v] + command.target_yaw_rate * dt
                )
            self._rate_roll[v] = (self._att_roll[v] - prev_roll) / dt
            self._rate_pitch[v] = (self._att_pitch[v] - prev_pitch) / dt
            self._rate_yaw[v] = (self._att_yaw[v] - prev_yaw) / dt

            # Body-z thrust decomposed into the local frame.
            thrust = command.throttle * self._max_thrust[v] if armed else 0.0
            roll = self._att_roll[v]
            pitch = self._att_pitch[v]
            yaw = self._att_yaw[v]
            vertical_thrust = thrust * math.cos(roll) * math.cos(pitch)
            forward = thrust * math.sin(pitch)
            right = thrust * math.sin(roll)
            thrust_north = forward * math.cos(yaw) - right * math.sin(yaw)
            thrust_east = forward * math.sin(yaw) + right * math.cos(yaw)

            drag = self._drag[v]
            mass = self._mass[v]
            accel_north = (
                thrust_north - drag * (self._vel_n[v] - wind_north)
            ) / mass
            accel_east = (thrust_east - drag * (self._vel_e[v] - wind_east)) / mass
            accel_up = (vertical_thrust - drag * self._vel_u[v]) / mass - GRAVITY

            if self._on_ground[v] and accel_up <= 0.0:
                # Resting on the ground: normal force cancels gravity.
                accel_up = 0.0
                accel_north = 0.0
                accel_east = 0.0
                self._vel_n[v] = 0.0
                self._vel_e[v] = 0.0
                self._vel_u[v] = 0.0

            self._acc_n[v] = accel_north
            self._acc_e[v] = accel_east
            self._acc_u[v] = accel_up
            self._vel_n[v] += accel_north * dt
            self._pos_n[v] += self._vel_n[v] * dt
            self._vel_e[v] += accel_east * dt
            self._pos_e[v] += self._vel_e[v] * dt
            self._vel_u[v] += accel_up * dt
            self._pos_u[v] += self._vel_u[v] * dt

    def _integrate_numpy(
        self, clamped: Sequence[ActuatorCommand], wind_north: float, wind_east: float
    ) -> None:
        """Vectorised form of :meth:`_integrate_python`.

        Element-wise arithmetic (lag, drag, Euler updates) runs on numpy
        float64 arrays, whose ``+ - * /`` are IEEE-754 identical to
        python floats.  Trig and angle wrapping stay per-element in
        :mod:`math` so the results match libm (and the python kernel)
        exactly.
        """
        np = _np
        dt = self.dt
        alpha = min(dt / self.attitude_time_constant, 1.0)
        armed = np.array([command.armed for command in clamped], dtype=bool)
        grounded = np.array(self._on_ground, dtype=bool)
        target_roll = np.where(
            armed, np.array([command.target_roll for command in clamped]), 0.0
        )
        target_pitch = np.where(
            armed, np.array([command.target_pitch for command in clamped]), 0.0
        )

        att_roll = np.array(self._att_roll)
        att_pitch = np.array(self._att_pitch)
        prev_roll = att_roll.copy()
        prev_pitch = att_pitch.copy()
        prev_yaw = list(self._att_yaw)
        att_roll += (target_roll - att_roll) * alpha
        att_pitch += (target_pitch - att_pitch) * alpha
        for v in range(self._n):
            # Yaw wraps through math.fmod: keep it scalar, like the trig.
            if armed[v] and not grounded[v]:
                self._att_yaw[v] = wrap_angle(
                    self._att_yaw[v] + clamped[v].target_yaw_rate * dt
                )
        att_yaw = np.array(self._att_yaw)
        rate_roll = (att_roll - prev_roll) / dt
        rate_pitch = (att_pitch - prev_pitch) / dt
        rate_yaw = (att_yaw - np.array(prev_yaw)) / dt

        thrust = np.where(
            armed,
            np.array([command.throttle for command in clamped])
            * np.array(self._max_thrust),
            0.0,
        )
        cos_roll = np.array([math.cos(value) for value in att_roll.tolist()])
        sin_roll = np.array([math.sin(value) for value in att_roll.tolist()])
        cos_pitch = np.array([math.cos(value) for value in att_pitch.tolist()])
        sin_pitch = np.array([math.sin(value) for value in att_pitch.tolist()])
        cos_yaw = np.array([math.cos(value) for value in att_yaw.tolist()])
        sin_yaw = np.array([math.sin(value) for value in att_yaw.tolist()])
        vertical_thrust = thrust * cos_roll * cos_pitch
        forward = thrust * sin_pitch
        right = thrust * sin_roll
        thrust_north = forward * cos_yaw - right * sin_yaw
        thrust_east = forward * sin_yaw + right * cos_yaw

        vel_n = np.array(self._vel_n)
        vel_e = np.array(self._vel_e)
        vel_u = np.array(self._vel_u)
        drag = np.array(self._drag)
        mass = np.array(self._mass)
        accel_north = (thrust_north - drag * (vel_n - wind_north)) / mass
        accel_east = (thrust_east - drag * (vel_e - wind_east)) / mass
        accel_up = (vertical_thrust - drag * vel_u) / mass - GRAVITY

        resting = grounded & (accel_up <= 0.0)
        accel_north = np.where(resting, 0.0, accel_north)
        accel_east = np.where(resting, 0.0, accel_east)
        accel_up = np.where(resting, 0.0, accel_up)
        vel_n = np.where(resting, 0.0, vel_n)
        vel_e = np.where(resting, 0.0, vel_e)
        vel_u = np.where(resting, 0.0, vel_u)

        vel_n += accel_north * dt
        vel_e += accel_east * dt
        vel_u += accel_up * dt
        pos_n = np.array(self._pos_n) + vel_n * dt
        pos_e = np.array(self._pos_e) + vel_e * dt
        pos_u = np.array(self._pos_u) + vel_u * dt

        self._armed = armed.tolist()
        self._att_roll = att_roll.tolist()
        self._att_pitch = att_pitch.tolist()
        self._att_yaw = att_yaw.tolist()
        self._rate_roll = rate_roll.tolist()
        self._rate_pitch = rate_pitch.tolist()
        self._rate_yaw = rate_yaw.tolist()
        self._acc_n = accel_north.tolist()
        self._acc_e = accel_east.tolist()
        self._acc_u = accel_up.tolist()
        self._vel_n = vel_n.tolist()
        self._vel_e = vel_e.tolist()
        self._vel_u = vel_u.tolist()
        self._pos_n = pos_n.tolist()
        self._pos_e = pos_e.tolist()
        self._pos_u = pos_u.tolist()

    def _ground_contact(self) -> None:
        """Clamp each vehicle to terrain; record impacts and touchdowns."""
        time_after = self._time + self.dt
        for v in range(self._n):
            self._step_touchdowns[v] = None
            terrain = self.environment.terrain_height(self._pos_n[v], self._pos_e[v])
            if self._pos_u[v] <= terrain:
                impact_speed = max(-self._vel_u[v], 0.0)
                if not self._on_ground[v]:
                    self._last_impact[v] = impact_speed
                    touchdown = Touchdown(
                        time=time_after,
                        vehicle=v,
                        speed=impact_speed,
                        position=(self._pos_n[v], self._pos_e[v], terrain),
                    )
                    self._step_touchdowns[v] = touchdown
                    self._touchdown_log.append(touchdown)
                self._pos_u[v] = terrain
                self._vel_u[v] = 0.0
                self._on_ground[v] = True
            elif self._pos_u[v] > terrain + 0.02:
                self._on_ground[v] = False
