"""Quiescence-skipping step planning for the adaptive stepper.

A simulated flight spends most of its wall-clock in stretches where
nothing discrete is about to happen: no fault window opens or closes, no
workload checkpoint fires, no vehicle is near another or mid mode
transition.  Inside such *quiescent* stretches the control loop can be
fused -- sensors sampled and the firmware stepped once for a window of N
physics micro-steps, the actuator command held in between -- without
changing which safety verdict the run reaches.  Near any *event
boundary* the loop must drop back to the reference cadence so
injections, recoveries and detector responses land on the exact step
they would land on anyway.

:class:`StepPlanner` makes that call.  It is constructed with every
statically known boundary time (fault-window starts and ends of both
fault families, the workload's scheduled checkpoints) and is kept
informed of the two dynamic hazards -- operating-mode transitions
(:meth:`note_transition`) and tight inter-vehicle proximity (the
``refine`` argument of :meth:`plan`).  ``plan()`` answers one question
per window: how many micro-steps may be fused *right now*?

The planner is pure bookkeeping -- it never touches the simulation -- so
its decisions are deterministic functions of the scenario and the
observed run, and two runs of the same scenario plan identically.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, List

#: Fuse at most this many micro-steps per macro-step.  Five reference
#: steps at the default dt=0.02 hold a command for 0.1 s, comfortably
#: under the 0.15 s attitude time constant, so a held command cannot
#: slew the vehicle further than the reference loop could between two
#: of its own command updates.
DEFAULT_MAX_STRIDE = 5

#: Refine this many seconds *before* a known boundary: sensors must be
#: sampling at the reference cadence when a fault window opens so the
#: injection lands on the same read it lands on under the reference
#: stepper.
DEFAULT_HORIZON_S = 0.3

#: Refine this many seconds *after* a boundary or mode transition: the
#: firmware's response (failsafe entry, recovery re-convergence) plays
#: out at full resolution before fusing resumes.
DEFAULT_SETTLE_S = 0.75


class StepPlanner:
    """Decides, window by window, how many micro-steps may be fused."""

    def __init__(
        self,
        dt: float,
        max_stride: int = DEFAULT_MAX_STRIDE,
        event_times: Iterable[float] = (),
        horizon_s: float = DEFAULT_HORIZON_S,
        settle_s: float = DEFAULT_SETTLE_S,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if max_stride < 1:
            raise ValueError("max_stride must be at least 1")
        self.dt = dt
        self.max_stride = max_stride
        self.horizon_s = horizon_s
        self.settle_s = settle_s
        self._boundaries: List[float] = sorted(
            float(time) for time in event_times if time is not None
        )
        self._settle_until = float("-inf")

        #: Windows fused into one sensor/firmware update (stride > 1).
        self.macro_steps = 0
        #: Physics micro-steps planned in total, across all windows.
        self.micro_steps = 0
        #: Windows forced to stride 1 by a nearby boundary, an active
        #: settle period, or a caller-reported hazard.
        self.boundary_refinements = 0

    # ------------------------------------------------------------------
    # Boundary bookkeeping
    # ------------------------------------------------------------------
    @property
    def event_times(self) -> List[float]:
        """The known boundary times, sorted (a copy)."""
        return list(self._boundaries)

    def add_events(self, times: Iterable[float]) -> None:
        """Register further boundary times (workload checkpoints)."""
        for time in times:
            if time is not None:
                insort(self._boundaries, float(time))

    def note_transition(self, time: float) -> None:
        """Report an observed operating-mode transition at ``time``."""
        settle_end = time + self.settle_s
        if settle_end > self._settle_until:
            self._settle_until = settle_end

    def quiescent(self, now: float, window_end: float) -> bool:
        """True when no boundary affects the window ``[now, window_end]``.

        A boundary ``b`` affects the window when its guarded interval
        ``[b - horizon_s, b + settle_s]`` intersects it.
        """
        if now < self._settle_until:
            return False
        index = bisect_left(self._boundaries, now - self.settle_s)
        return not (
            index < len(self._boundaries)
            and self._boundaries[index] <= window_end + self.horizon_s
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, now: float, requested: int, refine: bool = False) -> int:
        """Micro-steps to fuse into the next window starting at ``now``.

        ``requested`` caps the window (the workload asked for exactly
        that many steps); ``refine`` forces the reference cadence for
        hazards only the caller can see (tight separation).  Returns at
        least 1.
        """
        limit = min(self.max_stride, requested)
        if limit < 1:
            limit = 1
        stride = limit
        if limit > 1:
            if refine or not self.quiescent(now, now + limit * self.dt):
                stride = 1
        if stride > 1:
            self.macro_steps += 1
        elif limit > 1:
            self.boundary_refinements += 1
        self.micro_steps += stride
        return stride
