"""The physical world the simulated vehicle flies in.

Section IV-A of the paper: "The simulator provides an environment, a
model of the physical world that contains obstacles and weather effects.
[...] Avis uses an environment without hostile weather or obstacles."

The default environment therefore contains only the ground plane and the
home location.  Obstacles, fences and wind are supported because (a) the
second default workload uses a geo-fence and (b) the bug-study benchmark
distinguishes bugs that need special environments from those reproducible
under default settings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Optional, Sequence, Tuple

from repro.sim.state import Vector3, VehicleState


@dataclass(frozen=True)
class Obstacle:
    """An axis-aligned box obstacle in the local frame.

    Obstacles are specified by their centre (north, east), footprint
    half-extents, and height above ground.
    """

    name: str
    center_north: float
    center_east: float
    half_width_north: float
    half_width_east: float
    height: float

    def contains(self, point: Vector3) -> bool:
        """Return True when ``point`` lies inside the obstacle volume."""
        north, east, up = point
        return (
            abs(north - self.center_north) <= self.half_width_north
            and abs(east - self.center_east) <= self.half_width_east
            and 0.0 <= up <= self.height
        )

    def horizontal_distance(self, point: Vector3) -> float:
        """Distance from ``point`` to the obstacle footprint (0 if inside)."""
        dn = max(abs(point[0] - self.center_north) - self.half_width_north, 0.0)
        de = max(abs(point[1] - self.center_east) - self.half_width_east, 0.0)
        return math.hypot(dn, de)


@dataclass(frozen=True)
class FenceRegion:
    """A rectangular keep-out region used by the fence workload.

    The second default workload in the paper flies a 20 m x 20 m box that
    overlaps a fenced area the UAV must avoid.  A fence breach is not a
    physical collision; the firmware is expected to react to it (brake,
    return, or land depending on configuration).
    """

    name: str
    min_north: float
    max_north: float
    min_east: float
    max_east: float
    min_altitude: float = 0.0
    max_altitude: float = float("inf")

    def __post_init__(self) -> None:
        if self.min_north > self.max_north or self.min_east > self.max_east:
            raise ValueError("fence region has inverted bounds")

    def contains(self, point: Vector3) -> bool:
        """Return True when ``point`` lies inside the keep-out region."""
        north, east, up = point
        return (
            self.min_north <= north <= self.max_north
            and self.min_east <= east <= self.max_east
            and self.min_altitude <= up <= self.max_altitude
        )


@dataclass(frozen=True)
class Wind:
    """A constant wind field plus an optional gust amplitude.

    The default environment is calm.  Wind is modelled as a constant
    acceleration disturbance proportional to the difference between wind
    speed and vehicle speed; gusts add a deterministic sinusoidal term so
    runs remain reproducible.
    """

    north_ms: float = 0.0
    east_ms: float = 0.0
    gust_amplitude_ms: float = 0.0
    gust_period_s: float = 5.0

    def velocity_at(self, time: float) -> Tuple[float, float]:
        """Wind velocity (north, east) in m/s at simulation time ``time``."""
        if self.gust_amplitude_ms == 0.0:
            return (self.north_ms, self.east_ms)
        gust = self.gust_amplitude_ms * math.sin(2.0 * math.pi * time / self.gust_period_s)
        return (self.north_ms + gust, self.east_ms + gust * 0.5)

    @property
    def is_calm(self) -> bool:
        """True when there is no wind at all."""
        return self.north_ms == 0.0 and self.east_ms == 0.0 and self.gust_amplitude_ms == 0.0


@dataclass(frozen=True)
class GeoLocation:
    """A WGS-84 location used to georeference the local frame."""

    latitude_deg: float = 40.0 + 0.0 / 60.0          # Columbus, OH area
    longitude_deg: float = -83.0
    altitude_msl_m: float = 270.0

    # Metres per degree at mid latitudes; adequate for +/- a few hundred
    # metres of flight around the home point.
    METERS_PER_DEG_LAT: ClassVar[float] = 111_320.0

    def meters_per_deg_lon(self) -> float:
        """Longitude scale factor at this latitude."""
        return self.METERS_PER_DEG_LAT * math.cos(math.radians(self.latitude_deg))

    def offset(self, north_m: float, east_m: float) -> "GeoLocation":
        """Return the location ``north_m`` / ``east_m`` metres away."""
        return GeoLocation(
            latitude_deg=self.latitude_deg + north_m / self.METERS_PER_DEG_LAT,
            longitude_deg=self.longitude_deg + east_m / self.meters_per_deg_lon(),
            altitude_msl_m=self.altitude_msl_m,
        )

    def local_offset_to(self, other: "GeoLocation") -> Tuple[float, float]:
        """Return (north, east) metres from this location to ``other``."""
        north = (other.latitude_deg - self.latitude_deg) * self.METERS_PER_DEG_LAT
        east = (other.longitude_deg - self.longitude_deg) * self.meters_per_deg_lon()
        return (north, east)


@dataclass
class Environment:
    """The simulated physical world.

    The default construction matches the paper's evaluation environment:
    flat ground at altitude zero, no obstacles, no wind, and the home
    location at the local origin.
    """

    home: GeoLocation = field(default_factory=GeoLocation)
    ground_altitude: float = 0.0
    obstacles: Sequence[Obstacle] = field(default_factory=tuple)
    fences: Sequence[FenceRegion] = field(default_factory=tuple)
    wind: Wind = field(default_factory=Wind)
    air_density: float = 1.225

    def terrain_height(self, north: float, east: float) -> float:
        """Ground height at a horizontal location (flat world by default)."""
        del north, east  # flat terrain everywhere
        return self.ground_altitude

    def colliding_obstacle(self, point: Vector3) -> Optional[Obstacle]:
        """Return the obstacle that ``point`` penetrates, if any."""
        for obstacle in self.obstacles:
            if obstacle.contains(point):
                return obstacle
        return None

    def breached_fence(self, point: Vector3) -> Optional[FenceRegion]:
        """Return the fence region containing ``point``, if any."""
        for fence in self.fences:
            if fence.contains(point):
                return fence
        return None

    def is_below_ground(self, point: Vector3) -> bool:
        """Return True when ``point`` is at or below the terrain surface."""
        return point[2] <= self.terrain_height(point[0], point[1])

    def describe(self) -> str:
        """A one-line summary used in reports."""
        parts = [f"ground@{self.ground_altitude:.1f}m"]
        if self.obstacles:
            parts.append(f"{len(self.obstacles)} obstacle(s)")
        if self.fences:
            parts.append(f"{len(self.fences)} fence(s)")
        parts.append("calm" if self.wind.is_calm else "windy")
        return ", ".join(parts)


def default_environment() -> Environment:
    """The environment used by the paper's evaluation: calm and empty."""
    return Environment()


def fenced_environment(
    fence: Optional[FenceRegion] = None,
    obstacles: Iterable[Obstacle] = (),
) -> Environment:
    """An environment with a keep-out fence for the fence workload.

    The default fence overlaps the north-east corner of the 20 m x 20 m
    box flown by the waypoint workload, forcing the firmware's fence
    handling to engage mid-mission.
    """
    if fence is None:
        fence = FenceRegion(
            name="restricted-airspace",
            min_north=15.0,
            max_north=60.0,
            min_east=15.0,
            max_east=60.0,
        )
    return Environment(fences=(fence,), obstacles=tuple(obstacles))


def check_environment_is_default(environment: Environment) -> bool:
    """True when the environment matches the paper's default test setup."""
    return (
        not environment.obstacles
        and not environment.fences
        and environment.wind.is_calm
        and environment.ground_altitude == 0.0
    )
