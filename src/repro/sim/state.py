"""Physical state of the simulated vehicle.

The invariant monitor in the paper represents the vehicle state as the
tuple ``(P, alpha, M)`` -- position, acceleration, and operating mode.
The simulator tracks a richer state (velocity, attitude, angular rates)
because the firmware's estimator and controllers need it, but the
:class:`VehicleState` snapshot exposes exactly what the monitor consumes.

Coordinate convention: a local Cartesian frame anchored at the home
location.  ``x`` points north, ``y`` points east, and ``z`` points *up*
(altitude above home, in metres).  Yaw is measured clockwise from north
in radians, matching compass headings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Tuple

Vector3 = Tuple[float, float, float]


def vector_add(a: Vector3, b: Vector3) -> Vector3:
    """Return the component-wise sum of two 3-vectors."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def vector_sub(a: Vector3, b: Vector3) -> Vector3:
    """Return the component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def vector_scale(a: Vector3, factor: float) -> Vector3:
    """Return ``a`` scaled by ``factor``."""
    return (a[0] * factor, a[1] * factor, a[2] * factor)


def vector_norm(a: Vector3) -> float:
    """Return the Euclidean norm of a 3-vector."""
    return math.sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2])


def euclidean_distance(a: Vector3, b: Vector3) -> float:
    """Euclidean distance between two points.

    This is the ``d_e`` used throughout Section IV-C of the paper for both
    position and acceleration distances.
    """
    return vector_norm(vector_sub(a, b))


def wrap_angle(angle: float) -> float:
    """Wrap an angle in radians to the interval ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


@dataclass(frozen=True)
class AttitudeState:
    """Orientation of the vehicle expressed as Euler angles (radians)."""

    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0

    def as_tuple(self) -> Vector3:
        """Return ``(roll, pitch, yaw)`` as a plain tuple."""
        return (self.roll, self.pitch, self.yaw)

    def rotated_yaw(self, delta: float) -> "AttitudeState":
        """Return a copy with ``delta`` radians added to the yaw (wrapped)."""
        return AttitudeState(self.roll, self.pitch, wrap_angle(self.yaw + delta))


@dataclass(frozen=True)
class VehicleState:
    """Snapshot of the simulated vehicle's physical state at one time-step.

    Attributes
    ----------
    time:
        Simulation time in seconds since the start of the run.
    position:
        ``(north, east, up)`` metres relative to home.
    velocity:
        ``(north, east, up)`` metres per second.
    acceleration:
        ``(north, east, up)`` metres per second squared, *excluding* gravity
        (i.e. the specific force the accelerometer would sense minus the
        static 1 g offset -- what the invariant monitor compares).
    attitude:
        Euler angles of the airframe.
    angular_rate:
        Body rotation rates ``(roll_rate, pitch_rate, yaw_rate)`` in rad/s.
    on_ground:
        Whether the vehicle is resting on (or has impacted) the ground.
    armed:
        Whether motors are armed.  The simulator mirrors the firmware's
        arming state so collision analysis can distinguish a parked vehicle
        from a crashed one.
    """

    time: float = 0.0
    position: Vector3 = (0.0, 0.0, 0.0)
    velocity: Vector3 = (0.0, 0.0, 0.0)
    acceleration: Vector3 = (0.0, 0.0, 0.0)
    attitude: AttitudeState = field(default_factory=AttitudeState)
    angular_rate: Vector3 = (0.0, 0.0, 0.0)
    on_ground: bool = True
    armed: bool = False

    @property
    def altitude(self) -> float:
        """Altitude above the home position in metres."""
        return self.position[2]

    @property
    def ground_speed(self) -> float:
        """Horizontal speed in metres per second."""
        return math.hypot(self.velocity[0], self.velocity[1])

    @property
    def climb_rate(self) -> float:
        """Vertical speed in metres per second (positive is up)."""
        return self.velocity[2]

    @property
    def heading(self) -> float:
        """Yaw angle in radians, clockwise from north."""
        return self.attitude.yaw

    def horizontal_distance_to(self, point: Vector3) -> float:
        """Horizontal (north/east plane) distance to ``point`` in metres."""
        return math.hypot(self.position[0] - point[0], self.position[1] - point[1])

    def distance_to(self, point: Vector3) -> float:
        """Full 3-D Euclidean distance to ``point`` in metres."""
        return euclidean_distance(self.position, point)

    def with_time(self, time: float) -> "VehicleState":
        """Return a copy of the state stamped with a different time."""
        return replace(self, time=time)

    def with_armed(self, armed: bool) -> "VehicleState":
        """Return a copy of the state with the armed flag changed."""
        return replace(self, armed=armed)


def interpolate_states(a: VehicleState, b: VehicleState, fraction: float) -> VehicleState:
    """Linearly interpolate between two states.

    Used by trace analysis when resampling runs of different durations onto
    a common time base (the paper pads shorter runs by repeating the last
    state; interpolation is used when traces were recorded at different
    rates).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")

    def lerp(x: float, y: float) -> float:
        return x + (y - x) * fraction

    def lerp3(x: Vector3, y: Vector3) -> Vector3:
        return (lerp(x[0], y[0]), lerp(x[1], y[1]), lerp(x[2], y[2]))

    return VehicleState(
        time=lerp(a.time, b.time),
        position=lerp3(a.position, b.position),
        velocity=lerp3(a.velocity, b.velocity),
        acceleration=lerp3(a.acceleration, b.acceleration),
        attitude=AttitudeState(
            lerp(a.attitude.roll, b.attitude.roll),
            lerp(a.attitude.pitch, b.attitude.pitch),
            a.attitude.yaw + wrap_angle(b.attitude.yaw - a.attitude.yaw) * fraction,
        ),
        angular_rate=lerp3(a.angular_rate, b.angular_rate),
        on_ground=a.on_ground if fraction < 0.5 else b.on_ground,
        armed=a.armed if fraction < 0.5 else b.armed,
    )


def pad_trace(trace: Iterable[VehicleState], length: int) -> list[VehicleState]:
    """Pad a trace to ``length`` samples by repeating its final state.

    The paper's liveliness metric requires every profiling run to have the
    same duration; shorter runs "repeat the last state an appropriate
    number of times".
    """
    states = list(trace)
    if not states:
        raise ValueError("cannot pad an empty trace")
    if length < len(states):
        raise ValueError(
            f"target length {length} is shorter than the trace ({len(states)} samples)"
        )
    last = states[-1]
    states.extend([last] * (length - len(states)))
    return states
