"""Airframe parameter sets for the simulated vehicles.

Every experiment in the paper uses the 3DR Iris quadcopter, the reference
airframe for both ArduPilot and PX4 SITL.  The parameters below are a
reasonable public approximation of the Iris (mass ~1.5 kg, ~0.25 m arms,
four rotors) and are deliberately kept simple: the reproduction needs the
firmware's fault-handling behaviour, not an aerodynamic-grade model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AirframeParameters:
    """Physical parameters of a multicopter airframe.

    Attributes
    ----------
    name:
        Human readable airframe name.
    mass_kg:
        Vehicle mass including battery.
    arm_length_m:
        Distance from the centre of mass to each rotor.
    max_thrust_n:
        Combined maximum thrust of all rotors, in newtons.
    max_tilt_rad:
        Maximum commanded lean angle the firmware will request.
    drag_coefficient:
        Linear drag coefficient applied to translational velocity.
    max_climb_rate_ms:
        Firmware-limited maximum climb rate.
    max_descent_rate_ms:
        Firmware-limited maximum descent rate (positive number).
    max_horizontal_speed_ms:
        Firmware-limited maximum ground speed.
    max_yaw_rate_rads:
        Maximum yaw rate.
    rotor_count:
        Number of rotors (4 for the Iris).
    hover_throttle:
        Fraction of maximum thrust needed to hover (mass * g / max thrust).
    """

    name: str
    mass_kg: float
    arm_length_m: float
    max_thrust_n: float
    max_tilt_rad: float
    drag_coefficient: float
    max_climb_rate_ms: float
    max_descent_rate_ms: float
    max_horizontal_speed_ms: float
    max_yaw_rate_rads: float
    rotor_count: int = 4

    def __post_init__(self) -> None:
        if self.mass_kg <= 0.0:
            raise ValueError("mass_kg must be positive")
        if self.max_thrust_n <= self.mass_kg * 9.80665:
            raise ValueError(
                "max_thrust_n must exceed the vehicle's weight or it cannot hover"
            )
        if self.rotor_count < 3:
            raise ValueError("a multicopter needs at least 3 rotors")

    @property
    def weight_n(self) -> float:
        """Weight of the airframe in newtons."""
        return self.mass_kg * 9.80665

    @property
    def hover_throttle(self) -> float:
        """Throttle fraction (0..1) that balances gravity."""
        return self.weight_n / self.max_thrust_n

    @property
    def thrust_to_weight(self) -> float:
        """Thrust-to-weight ratio of the airframe."""
        return self.max_thrust_n / self.weight_n


IRIS_QUADCOPTER = AirframeParameters(
    name="3DR Iris",
    mass_kg=1.5,
    arm_length_m=0.25,
    max_thrust_n=30.0,
    max_tilt_rad=0.61,          # ~35 degrees, ArduCopter ANGLE_MAX default
    drag_coefficient=0.35,
    max_climb_rate_ms=2.5,      # ArduCopter PILOT_SPEED_UP default (250 cm/s)
    max_descent_rate_ms=3.5,
    max_horizontal_speed_ms=10.0,
    max_yaw_rate_rads=2.0,
    rotor_count=4,
)
"""The 3DR Iris quadcopter used in every experiment in the paper."""


SOLO_QUADCOPTER = AirframeParameters(
    name="3DR Solo",
    mass_kg=1.8,
    arm_length_m=0.21,
    max_thrust_n=36.0,
    max_tilt_rad=0.61,
    drag_coefficient=0.40,
    max_climb_rate_ms=3.0,
    max_descent_rate_ms=3.5,
    max_horizontal_speed_ms=12.0,
    max_yaw_rate_rads=2.5,
    rotor_count=4,
)
"""A second airframe, used only by tests that exercise parameterisation."""
