"""Quadcopter dynamics integrated at a fixed time-step.

The model is a deliberately simple but honest multicopter:

* Attitude follows commanded attitude through a first-order lag (the
  real vehicle's attitude loop runs far faster than the position loop, so
  from the perspective of the navigation code a rate-limited first-order
  response is an adequate abstraction).
* Thrust acts along the body z-axis; tilting the body produces
  horizontal acceleration, exactly the mechanism the firmware's position
  controller relies on.
* Linear drag opposes velocity relative to the wind.
* Ground contact clamps the vehicle at terrain height and records the
  impact speed so the collision detector can distinguish a landing from
  a crash.

What matters for the reproduction is that mishandled sensor failures
produce the same *observable* consequences as in the paper: overshoot,
fly-away, loss of position hold, and high-speed ground impact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.environment import Environment
from repro.sim.state import AttitudeState, VehicleState, Vector3, wrap_angle
from repro.sim.vehicle import AirframeParameters

GRAVITY = 9.80665

#: Landings faster than this vertical speed are treated as hard impacts by
#: the collision detector.  ArduCopter's LAND_SPEED default is 0.5 m/s;
#: a 2.0 m/s threshold leaves margin for a sloppy-but-safe touchdown.
HARD_IMPACT_SPEED = 2.0


@dataclass
class ActuatorCommand:
    """The firmware's output for one control period.

    The firmware commands a collective throttle (0..1 fraction of maximum
    thrust), a desired attitude, and a yaw rate.  A real mixer converts
    these to individual rotor speeds; the physics model consumes them
    directly, which preserves the input/output contract of the firmware
    without simulating individual motors.
    """

    throttle: float = 0.0
    target_roll: float = 0.0
    target_pitch: float = 0.0
    target_yaw_rate: float = 0.0
    armed: bool = False

    def clamped(self, airframe: AirframeParameters) -> "ActuatorCommand":
        """Return a copy with every channel clamped to the airframe limits."""
        tilt = airframe.max_tilt_rad
        return ActuatorCommand(
            throttle=min(max(self.throttle, 0.0), 1.0),
            target_roll=min(max(self.target_roll, -tilt), tilt),
            target_pitch=min(max(self.target_pitch, -tilt), tilt),
            target_yaw_rate=min(
                max(self.target_yaw_rate, -airframe.max_yaw_rate_rads),
                airframe.max_yaw_rate_rads,
            ),
            armed=self.armed,
        )


@dataclass
class QuadrotorPhysics:
    """Fixed-step integrator for the multicopter model."""

    airframe: AirframeParameters
    environment: Environment
    dt: float = 0.01
    attitude_time_constant: float = 0.15

    # Internal mutable state.
    _time: float = field(default=0.0, init=False)
    _position: list = field(default_factory=lambda: [0.0, 0.0, 0.0], init=False)
    _velocity: list = field(default_factory=lambda: [0.0, 0.0, 0.0], init=False)
    _acceleration: list = field(default_factory=lambda: [0.0, 0.0, 0.0], init=False)
    _attitude: list = field(default_factory=lambda: [0.0, 0.0, 0.0], init=False)
    _angular_rate: list = field(default_factory=lambda: [0.0, 0.0, 0.0], init=False)
    _on_ground: bool = field(default=True, init=False)
    _armed: bool = field(default=False, init=False)
    _last_impact_speed: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        start_height = self.environment.terrain_height(0.0, 0.0)
        self._position[2] = start_height

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        """Current simulation time in seconds."""
        return self._time

    @property
    def last_impact_speed(self) -> float:
        """Vertical speed (m/s, positive) recorded at the last ground contact."""
        return self._last_impact_speed

    def snapshot(self) -> VehicleState:
        """Return an immutable snapshot of the current physical state."""
        return VehicleState(
            time=self._time,
            position=tuple(self._position),
            velocity=tuple(self._velocity),
            acceleration=tuple(self._acceleration),
            attitude=AttitudeState(*self._attitude),
            angular_rate=tuple(self._angular_rate),
            on_ground=self._on_ground,
            armed=self._armed,
        )

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def step(self, command: ActuatorCommand) -> VehicleState:
        """Advance the dynamics by one time-step under ``command``."""
        command = command.clamped(self.airframe)
        self._armed = command.armed

        self._update_attitude(command)
        self._update_translation(command)
        self._handle_ground_contact()

        self._time += self.dt
        return self.snapshot()

    def _update_attitude(self, command: ActuatorCommand) -> None:
        """First-order attitude response plus rate-commanded yaw."""
        if not command.armed:
            # Motors off: attitude relaxes toward level.
            targets = (0.0, 0.0)
        else:
            targets = (command.target_roll, command.target_pitch)

        alpha = min(self.dt / self.attitude_time_constant, 1.0)
        previous = list(self._attitude)
        self._attitude[0] += (targets[0] - self._attitude[0]) * alpha
        self._attitude[1] += (targets[1] - self._attitude[1]) * alpha
        if command.armed and not self._on_ground:
            self._attitude[2] = wrap_angle(
                self._attitude[2] + command.target_yaw_rate * self.dt
            )
        self._angular_rate = [
            (self._attitude[i] - previous[i]) / self.dt for i in range(3)
        ]

    def _update_translation(self, command: ActuatorCommand) -> None:
        """Integrate the translational dynamics for one step."""
        thrust = command.throttle * self.airframe.max_thrust_n if command.armed else 0.0
        roll, pitch, _yaw = self._attitude
        yaw = self._attitude[2]

        # Body-z thrust decomposed into the local frame.  Positive pitch
        # tilts the nose down producing +north acceleration; positive roll
        # produces +east acceleration (after rotating through yaw).
        vertical_thrust = thrust * math.cos(roll) * math.cos(pitch)
        forward = thrust * math.sin(pitch)
        right = thrust * math.sin(roll)
        thrust_north = forward * math.cos(yaw) - right * math.sin(yaw)
        thrust_east = forward * math.sin(yaw) + right * math.cos(yaw)

        wind_north, wind_east = self.environment.wind.velocity_at(self._time)
        relative_velocity = (
            self._velocity[0] - wind_north,
            self._velocity[1] - wind_east,
            self._velocity[2],
        )
        drag = self.airframe.drag_coefficient
        accel_north = (thrust_north - drag * relative_velocity[0]) / self.airframe.mass_kg
        accel_east = (thrust_east - drag * relative_velocity[1]) / self.airframe.mass_kg
        accel_up = (
            vertical_thrust - drag * relative_velocity[2]
        ) / self.airframe.mass_kg - GRAVITY

        if self._on_ground and accel_up <= 0.0:
            # Resting on the ground: normal force cancels gravity.
            accel_up = 0.0
            accel_north = 0.0
            accel_east = 0.0
            self._velocity = [0.0, 0.0, 0.0]

        self._acceleration = [accel_north, accel_east, accel_up]
        for i in range(3):
            self._velocity[i] += self._acceleration[i] * self.dt
            self._position[i] += self._velocity[i] * self.dt

    def _handle_ground_contact(self) -> None:
        """Clamp the vehicle to the terrain and record impact speed."""
        terrain = self.environment.terrain_height(self._position[0], self._position[1])
        if self._position[2] <= terrain:
            impact_speed = max(-self._velocity[2], 0.0)
            if not self._on_ground:
                self._last_impact_speed = impact_speed
            self._position[2] = terrain
            self._velocity[2] = 0.0
            self._on_ground = True
        elif self._position[2] > terrain + 0.02:
            self._on_ground = False

    # ------------------------------------------------------------------
    # Test helpers
    # ------------------------------------------------------------------
    def teleport(self, position: Vector3, velocity: Vector3 = (0.0, 0.0, 0.0)) -> None:
        """Place the vehicle at ``position`` (used by unit tests only)."""
        self._position = list(position)
        self._velocity = list(velocity)
        self._on_ground = self.environment.is_below_ground(position)
