"""Battery monitor driver.

Reports battery voltage and remaining capacity.  The battery monitor
matters for the reproduction because the re-inserted bug PX4-13291
(Table V of the paper) is only triggered by a *joint* GPS + battery
failure: the GPS failure removes the local position estimate, then the
battery fail-safe fires and the vehicle flies away.
"""

from __future__ import annotations

from typing import Dict

from repro.sensors.base import SensorDriver, SensorRole, SensorType
from repro.sim.state import VehicleState


class BatteryMonitor(SensorDriver):
    """Measures pack voltage, current draw, and remaining capacity."""

    sensor_type = SensorType.BATTERY

    #: Fully charged 4S pack voltage.
    FULL_VOLTAGE = 16.8
    #: Voltage considered empty.
    EMPTY_VOLTAGE = 13.2
    #: Nominal flight time at hover, in seconds, for capacity modelling.
    NOMINAL_ENDURANCE_S = 1200.0

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        # Discharge model: linear with armed time; the workloads in the
        # paper last a couple of minutes so the pack stays healthy unless
        # a battery fault is injected.
        used_fraction = min(state.time / self.NOMINAL_ENDURANCE_S, 1.0)
        remaining = 1.0 - used_fraction
        voltage = (
            self.EMPTY_VOLTAGE
            + (self.FULL_VOLTAGE - self.EMPTY_VOLTAGE) * remaining
            + self._noise(0.02)
        )
        current = 15.0 if state.armed and not state.on_ground else 0.5
        return {
            "voltage": voltage,
            "current": current + self._noise(0.1),
            "remaining": remaining,
        }
