"""Barometric altimeter driver.

The barometer is the firmware's primary altitude reference.  It is
modelled as true altitude plus slow drift and small noise; pressure is
also reported so the driver's interface matches what a real baro exposes.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.sensors.base import SensorDriver, SensorRole, SensorType
from repro.sim.state import VehicleState

#: Sea-level standard pressure in hPa.
SEA_LEVEL_PRESSURE_HPA = 1013.25
#: Approximate pressure lapse: hPa lost per metre of altitude near sea level.
PRESSURE_LAPSE_HPA_PER_M = 0.12


class Barometer(SensorDriver):
    """Measures barometric altitude (metres above home) and pressure."""

    sensor_type = SensorType.BAROMETER

    #: Altitude noise (metres, 1 sigma) -- much tighter than GPS altitude.
    ALTITUDE_SIGMA = 0.08
    #: Peak-to-peak amplitude of the slow drift term (metres).
    DRIFT_AMPLITUDE = 0.15
    #: Period of the drift term (seconds).
    DRIFT_PERIOD = 120.0

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)
        self._drift_phase = self._rng.uniform(0.0, 2.0 * math.pi)

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        drift = self.DRIFT_AMPLITUDE * math.sin(
            2.0 * math.pi * state.time / self.DRIFT_PERIOD + self._drift_phase
        )
        altitude = state.altitude + drift + self._noise(self.ALTITUDE_SIGMA)
        pressure = SEA_LEVEL_PRESSURE_HPA - PRESSURE_LAPSE_HPA_PER_M * altitude
        return {"altitude": altitude, "pressure_hpa": pressure}
