"""Sensor models with redundant instances and clean-failure semantics.

The paper's fault model (Section IV-B) is the *clean sensor failure*: a
sensor instance stops communicating with the firmware, the driver reports
the instance has failed, and the instance never recovers within the same
test run.  Every sensor driver in this package implements that contract:

* ``read(state, time)`` returns a :class:`~repro.sensors.base.SensorReading`
  synthesised from the simulated vehicle state, or a reading flagged
  ``failed`` once the instance has been failed.
* The read path passes through the hinj instrumentation hook so the fault
  injection engine can fail any instance at any time-step, exactly like
  ``libhinj`` instruments the ``read()`` procedure of each driver.

Sensor types follow the paper: gyroscope, accelerometer, GPS, compass,
barometer, and battery monitor.  The suite groups instances into primary
and backup roles; the sensor-instance-symmetry pruning policy relies on
those roles.
"""

from repro.sensors.barometer import Barometer
from repro.sensors.base import (
    SensorDriver,
    SensorId,
    SensorReading,
    SensorRole,
    SensorType,
)
from repro.sensors.battery import BatteryMonitor
from repro.sensors.compass import Compass
from repro.sensors.gps import GpsReceiver
from repro.sensors.imu import Accelerometer, Gyroscope
from repro.sensors.suite import SensorSuite, iris_sensor_suite

__all__ = [
    "Accelerometer",
    "Barometer",
    "BatteryMonitor",
    "Compass",
    "GpsReceiver",
    "Gyroscope",
    "SensorDriver",
    "SensorId",
    "SensorReading",
    "SensorRole",
    "SensorSuite",
    "SensorType",
    "iris_sensor_suite",
]
