"""GPS receiver driver.

Horizontal position from GPS is accurate to a metre or two; *vertical*
position is considerably worse.  That asymmetry is the physical root of
the Figure 1 bug in the paper: at normal altitudes GPS altitude is good
enough for simple manoeuvres, but near the ground its resolution is too
coarse to guide major altitude adjustments.  The driver therefore applies
a noticeably larger noise and quantisation step to the altitude channel.
"""

from __future__ import annotations

from typing import Dict

from repro.sensors.base import SensorDriver, SensorRole, SensorType
from repro.sim.state import VehicleState


class GpsReceiver(SensorDriver):
    """Provides horizontal position, GPS altitude, and velocity."""

    sensor_type = SensorType.GPS

    #: Horizontal position noise (metres, 1 sigma).
    HORIZONTAL_SIGMA = 0.4
    #: Vertical position noise (metres, 1 sigma) -- markedly worse.
    VERTICAL_SIGMA = 1.8
    #: Altitude quantisation step (metres); GPS altitude resolution is
    #: coarse, which is what makes low-altitude GPS-only flight unsafe.
    VERTICAL_RESOLUTION = 1.0
    #: Velocity noise (m/s, 1 sigma).
    VELOCITY_SIGMA = 0.1

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        north, east, up = state.position
        vel_north, vel_east, vel_up = state.velocity
        noisy_alt = up + self._noise(self.VERTICAL_SIGMA)
        quantised_alt = round(noisy_alt / self.VERTICAL_RESOLUTION) * self.VERTICAL_RESOLUTION
        return {
            "north": north + self._noise(self.HORIZONTAL_SIGMA),
            "east": east + self._noise(self.HORIZONTAL_SIGMA),
            "altitude": quantised_alt,
            "vel_north": vel_north + self._noise(self.VELOCITY_SIGMA),
            "vel_east": vel_east + self._noise(self.VELOCITY_SIGMA),
            "vel_up": vel_up + self._noise(self.VELOCITY_SIGMA),
            "satellites": 14.0,
            "hdop": 0.8,
        }
