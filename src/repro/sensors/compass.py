"""Magnetometer (compass) driver.

Reports the vehicle's magnetic heading.  The Iris carries two compasses:
an external primary and an internal backup with more interference noise.
"""

from __future__ import annotations

from typing import Dict

from repro.sensors.base import SensorDriver, SensorRole, SensorType
from repro.sim.state import VehicleState, wrap_angle


class Compass(SensorDriver):
    """Measures magnetic heading in radians (clockwise from north)."""

    sensor_type = SensorType.COMPASS

    #: Heading noise for the external (primary) compass, radians.
    PRIMARY_SIGMA = 0.01
    #: Heading noise for internal (backup) compasses, radians.
    BACKUP_SIGMA = 0.03

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)
        self._sigma = self.PRIMARY_SIGMA if role == SensorRole.PRIMARY else self.BACKUP_SIGMA
        # Small constant declination-style offset per instance.
        self._offset = self._rng.uniform(-0.01, 0.01)

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        heading = wrap_angle(state.heading + self._offset + self._noise(self._sigma))
        return {"heading": heading}
