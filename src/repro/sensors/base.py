"""Common sensor driver machinery.

A *sensor instance* is identified by a :class:`SensorId` (type + instance
index) and has a :class:`SensorRole` (primary or backup).  Drivers
synthesise readings from the simulated :class:`~repro.sim.state.VehicleState`
with deterministic, seeded noise so that every run is reproducible --
reproducibility underpins both the liveliness monitor (profiling runs
must be comparable) and bug replay.

The ``read()`` method mirrors the structure the paper describes for
``libhinj``: before the reading is handed to the firmware, an
instrumentation hook is consulted; if it answers that the instance should
fail, the reading is replaced by a failure record.  With the paper's
latched fault model the hook's answer never reverts, so the instance
stays failed for the rest of the run; an intermittent fault's scheduler
stops failing the instance once its recovery window closes, and the
driver reports healthy readings again from the next read on.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.state import VehicleState


class SensorType(enum.Enum):
    """Types of sensors carried by the simulated Iris quadcopter."""

    GYROSCOPE = "gyroscope"
    ACCELEROMETER = "accelerometer"
    GPS = "gps"
    COMPASS = "compass"
    BAROMETER = "barometer"
    BATTERY = "battery"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SensorRole(enum.Enum):
    """Role of a sensor instance within its redundancy group."""

    PRIMARY = "primary"
    BACKUP = "backup"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SensorId:
    """Identifies one physical sensor instance.

    ``SensorId(SensorType.COMPASS, 0)`` is the primary compass,
    ``SensorId(SensorType.COMPASS, 1)`` the first backup, and so on.
    Instances order by ``(vehicle, sensor type name, instance index)`` so
    suites and fault scenarios have a stable, readable ordering.

    ``vehicle`` namespaces the instance within a fleet: vehicle 0 is the
    single vehicle of every classic run and its ids render exactly as
    before (``gps[0]``), so scenario hashes, cache keys and search
    strategies are unchanged for fleet size 1.  Instances on other fleet
    members render with a vehicle prefix (``v1:gps[0]``).
    """

    sensor_type: SensorType
    instance: int = 0
    vehicle: int = 0

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ValueError("instance index cannot be negative")
        if self.vehicle < 0:
            raise ValueError("vehicle index cannot be negative")

    @property
    def label(self) -> str:
        """Short human-readable label, e.g. ``gps[0]`` or ``v1:gps[0]``."""
        base = f"{self.sensor_type.value}[{self.instance}]"
        if self.vehicle == 0:
            return base
        return f"v{self.vehicle}:{base}"

    @property
    def base(self) -> "SensorId":
        """The vehicle-0 (suite-local) id of this instance."""
        if self.vehicle == 0:
            return self
        return SensorId(self.sensor_type, self.instance, 0)

    def for_vehicle(self, vehicle: int) -> "SensorId":
        """This instance namespaced to ``vehicle`` (self when unchanged)."""
        if vehicle == self.vehicle:
            return self
        return SensorId(self.sensor_type, self.instance, vehicle)

    def _sort_key(self) -> tuple:
        return (self.vehicle, self.sensor_type.value, self.instance)

    def __lt__(self, other: "SensorId") -> bool:
        if not isinstance(other, SensorId):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "SensorId") -> bool:
        if not isinstance(other, SensorId):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "SensorId") -> bool:
        if not isinstance(other, SensorId):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "SensorId") -> bool:
        if not isinstance(other, SensorId):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True)
class SensorReading:
    """One reading produced by a sensor driver.

    ``values`` holds the measurement channels (meaning depends on the
    sensor type); ``failed`` marks a clean failure -- when set, ``values``
    must not be trusted and the firmware's fault handling is expected to
    engage.
    """

    sensor_id: SensorId
    time: float
    values: Dict[str, float] = field(default_factory=dict)
    failed: bool = False

    def value(self, channel: str) -> float:
        """Return one channel, raising ``KeyError`` when absent."""
        return self.values[channel]

    @staticmethod
    def failure(sensor_id: SensorId, time: float) -> "SensorReading":
        """Construct the reading a failed instance reports."""
        return SensorReading(sensor_id=sensor_id, time=time, values={}, failed=True)


#: Signature of the hinj instrumentation hook: given the sensor id and the
#: current simulation time, return True when the read should fail.
FailDecision = Callable[[SensorId, float], bool]


class SensorDriver:
    """Base class for all sensor drivers.

    Subclasses implement :meth:`_measure` to synthesise channel values
    from the true vehicle state.  :meth:`read` adds the instrumentation
    hook and the clean-failure latch.
    """

    sensor_type: SensorType = SensorType.GYROSCOPE

    def __init__(
        self,
        instance: int = 0,
        role: SensorRole = SensorRole.PRIMARY,
        noise_seed: int = 0,
    ) -> None:
        self.sensor_id = SensorId(self.sensor_type, instance)
        self.role = role
        self._rng = random.Random(noise_seed * 7919 + instance * 104729 + 1)
        self._failed = False
        self._hook_failed = False
        self._fail_hook: Optional[FailDecision] = None
        self._read_count = 0

    # ------------------------------------------------------------------
    # Instrumentation (libhinj equivalent)
    # ------------------------------------------------------------------
    def instrument(self, fail_hook: FailDecision) -> None:
        """Install the fault-injection hook consulted on every read.

        This is the Python analogue of inserting a ``libhinj`` API call in
        the driver's ``read()`` procedure.
        """
        self._fail_hook = fail_hook

    def remove_instrumentation(self) -> None:
        """Remove the fault-injection hook (used between test runs)."""
        self._fail_hook = None

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """True while the instance is suffering a clean failure."""
        return self._failed or self._hook_failed

    @property
    def healthy(self) -> bool:
        """True while the instance has not failed."""
        return not self.failed

    @property
    def read_count(self) -> int:
        """Number of reads performed so far (used by fault-space sizing)."""
        return self._read_count

    def fail(self) -> None:
        """Force the instance into the failed state (never recovers)."""
        self._failed = True

    def reset(self) -> None:
        """Restore the instance to healthy (only between test runs)."""
        self._failed = False
        self._hook_failed = False
        self._read_count = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, state: VehicleState, time: float) -> SensorReading:
        """Produce a reading for the firmware.

        The instrumentation hook is consulted on every read, mirroring
        the per-read ``libhinj`` query of the paper.  A latched fault's
        scheduler keeps answering yes once it has fired, so the failure
        persists for the rest of the run exactly as before; when an
        intermittent fault's recovery window closes the scheduler's
        answer reverts and the driver reports healthy readings again.
        A failure forced with :meth:`fail` (or left behind by a removed
        hook) never recovers.
        """
        self._read_count += 1
        if self._fail_hook is not None:
            self._hook_failed = self._fail_hook(self.sensor_id, time)
        if self._failed or self._hook_failed:
            return SensorReading.failure(self.sensor_id, time)
        values = self._measure(state)
        return SensorReading(sensor_id=self.sensor_id, time=time, values=values)

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        """Synthesise the channel values for one reading."""
        raise NotImplementedError

    def _noise(self, sigma: float) -> float:
        """Deterministic Gaussian noise sample with standard deviation sigma."""
        if sigma <= 0.0:
            return 0.0
        return self._rng.gauss(0.0, sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "failed" if self._failed else "healthy"
        return f"<{type(self).__name__} {self.sensor_id.label} {self.role.value} {status}>"
