"""Sensor suites: the set of sensor instances carried by an airframe.

The suite groups drivers by type, tracks which instance plays the
primary role, and exposes the operations the rest of the stack needs:

* the firmware reads every instance each control period and asks for the
  best healthy instance of each type;
* the fault injection engine enumerates instances (with roles) to build
  the fault space and applies the sensor-instance-symmetry policy;
* hinj instruments every driver's read path in one call.

The default :func:`iris_sensor_suite` mirrors a stock 3DR Iris running
ArduPilot/PX4 SITL: dual IMUs (gyroscope + accelerometer each), dual
compasses, one GPS, one barometer, and one battery monitor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.sensors.barometer import Barometer
from repro.sensors.base import (
    FailDecision,
    SensorDriver,
    SensorId,
    SensorReading,
    SensorRole,
    SensorType,
)
from repro.sensors.battery import BatteryMonitor
from repro.sensors.compass import Compass
from repro.sensors.gps import GpsReceiver
from repro.sensors.imu import Accelerometer, Gyroscope
from repro.sim.state import VehicleState


class SensorSuite:
    """All sensor instances carried by the vehicle."""

    def __init__(self, drivers: Iterable[SensorDriver]) -> None:
        self._drivers: Dict[SensorId, SensorDriver] = {}
        for driver in drivers:
            if driver.sensor_id in self._drivers:
                raise ValueError(f"duplicate sensor instance {driver.sensor_id.label}")
            self._drivers[driver.sensor_id] = driver
        if not self._drivers:
            raise ValueError("a sensor suite needs at least one sensor")
        # The driver set is fixed for the suite's lifetime, so the sorted
        # orderings are computed once here.  These sorts used to run on
        # every firmware control period and dominated whole-run profiles;
        # the accessors below hand out copies of these cached lists.
        self._sorted_ids: List[SensorId] = sorted(self._drivers)
        self._sorted_drivers: List[SensorDriver] = [
            self._drivers[key] for key in self._sorted_ids
        ]
        self._types: List[SensorType] = []
        for sensor_id in self._sorted_ids:
            if sensor_id.sensor_type not in self._types:
                self._types.append(sensor_id.sensor_type)
        self._by_type: Dict[SensorType, List[SensorDriver]] = {}
        for sensor_type in self._types:
            instances = [
                d for d in self._sorted_drivers if d.sensor_type == sensor_type
            ]
            self._by_type[sensor_type] = sorted(
                instances, key=lambda d: (d.role != SensorRole.PRIMARY, d.sensor_id)
            )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    @property
    def drivers(self) -> List[SensorDriver]:
        """Every driver in a stable order (by sensor id)."""
        return list(self._sorted_drivers)

    @property
    def sensor_ids(self) -> List[SensorId]:
        """Every sensor instance id in a stable order."""
        return list(self._sorted_ids)

    @property
    def sensor_types(self) -> List[SensorType]:
        """The distinct sensor types present in the suite."""
        return list(self._types)

    def driver(self, sensor_id: SensorId) -> SensorDriver:
        """Return the driver for ``sensor_id``."""
        return self._drivers[sensor_id]

    def instances_of(self, sensor_type: SensorType) -> List[SensorDriver]:
        """All instances of ``sensor_type`` ordered primary-first."""
        return list(self._by_type.get(sensor_type, []))

    def role_of(self, sensor_id: SensorId) -> SensorRole:
        """Return the redundancy role of ``sensor_id``."""
        return self._drivers[sensor_id].role

    def instance_count(self, sensor_type: SensorType) -> int:
        """Number of instances of ``sensor_type`` in the suite."""
        return len(self.instances_of(sensor_type))

    def __len__(self) -> int:
        return len(self._drivers)

    def __contains__(self, sensor_id: SensorId) -> bool:
        return sensor_id in self._drivers

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def healthy_instances(self, sensor_type: SensorType) -> List[SensorDriver]:
        """Healthy instances of ``sensor_type``, primary first."""
        return [d for d in self._by_type.get(sensor_type, ()) if d.healthy]

    def active_instance(self, sensor_type: SensorType) -> Optional[SensorDriver]:
        """The instance the firmware should currently trust, if any.

        The primary is preferred; when it has failed, the lowest numbered
        healthy backup takes over (sensor fail-over).  Returns ``None``
        when every instance of the type has failed.
        """
        healthy = self.healthy_instances(sensor_type)
        return healthy[0] if healthy else None

    def all_failed(self, sensor_type: SensorType) -> bool:
        """True when no healthy instance of ``sensor_type`` remains."""
        return not self.healthy_instances(sensor_type)

    def failed_sensor_ids(self) -> List[SensorId]:
        """Ids of every failed instance, in stable order."""
        return [d.sensor_id for d in self.drivers if d.failed]

    def reset(self) -> None:
        """Restore every instance to healthy (between test runs)."""
        for driver in self._drivers.values():
            driver.reset()

    # ------------------------------------------------------------------
    # Instrumentation and reading
    # ------------------------------------------------------------------
    def instrument(self, fail_hook: FailDecision) -> None:
        """Install the fault-injection hook on every driver."""
        for driver in self._drivers.values():
            driver.instrument(fail_hook)

    def remove_instrumentation(self) -> None:
        """Remove the fault-injection hook from every driver."""
        for driver in self._drivers.values():
            driver.remove_instrumentation()

    def read_all(self, state: VehicleState, time: float) -> Dict[SensorId, SensorReading]:
        """Read every instance once and return readings keyed by id."""
        return {
            driver.sensor_id: driver.read(state, time)
            for driver in self._sorted_drivers
        }

    def read_active(
        self, readings: Mapping[SensorId, SensorReading], sensor_type: SensorType
    ) -> Optional[SensorReading]:
        """From ``readings``, pick the one the firmware should use.

        Prefers the primary instance's reading when it is healthy,
        otherwise the first healthy backup; returns ``None`` when every
        instance of the type reported failure.
        """
        for driver in self._by_type.get(sensor_type, ()):
            reading = readings.get(driver.sensor_id)
            if reading is not None and not reading.failed:
                return reading
        return None


def iris_sensor_suite(noise_seed: int = 0) -> SensorSuite:
    """The sensor fit of the 3DR Iris used throughout the paper.

    Two IMUs (each contributing a gyroscope and an accelerometer), two
    compasses, one GPS, one barometer and one battery monitor -- seven
    distinct sensor groups, nine physical instances.
    """
    return SensorSuite(
        [
            Gyroscope(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            Gyroscope(instance=1, role=SensorRole.BACKUP, noise_seed=noise_seed),
            Accelerometer(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            Accelerometer(instance=1, role=SensorRole.BACKUP, noise_seed=noise_seed),
            Compass(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            Compass(instance=1, role=SensorRole.BACKUP, noise_seed=noise_seed),
            GpsReceiver(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            Barometer(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            BatteryMonitor(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
        ]
    )


def minimal_sensor_suite(noise_seed: int = 0) -> SensorSuite:
    """A two-sensor suite (GPS + barometer) matching Figure 5 of the paper.

    Used by unit tests and the Figure 5 benchmark, where the fault space
    is illustrated with exactly these two sensors.
    """
    return SensorSuite(
        [
            GpsReceiver(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
            Barometer(instance=0, role=SensorRole.PRIMARY, noise_seed=noise_seed),
        ]
    )
