"""Inertial measurement unit drivers: gyroscope and accelerometer.

The Iris carries two IMUs; each IMU contributes one gyroscope instance
and one accelerometer instance.  Both are modelled with small Gaussian
noise and a constant bias drawn deterministically from the instance's
seed, which is enough for the estimator's fusion and fail-over logic to
be meaningfully exercised.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.sensors.base import SensorDriver, SensorType
from repro.sim.physics import GRAVITY
from repro.sim.state import VehicleState


class Gyroscope(SensorDriver):
    """Measures body angular rates in rad/s."""

    sensor_type = SensorType.GYROSCOPE

    #: Standard deviation of the rate noise (rad/s).
    NOISE_SIGMA = 0.002

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            from repro.sensors.base import SensorRole

            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)
        # Constant per-instance bias, a fraction of a degree per second.
        self._bias = tuple(self._rng.uniform(-0.003, 0.003) for _ in range(3))

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        roll_rate, pitch_rate, yaw_rate = state.angular_rate
        return {
            "roll_rate": roll_rate + self._bias[0] + self._noise(self.NOISE_SIGMA),
            "pitch_rate": pitch_rate + self._bias[1] + self._noise(self.NOISE_SIGMA),
            "yaw_rate": yaw_rate + self._bias[2] + self._noise(self.NOISE_SIGMA),
        }


class Accelerometer(SensorDriver):
    """Measures specific force in the body frame, in m/s^2.

    The reading includes the reaction to gravity (a vehicle at rest reads
    approximately +1 g on the up axis), matching what real firmware has to
    subtract before integrating motion.
    """

    sensor_type = SensorType.ACCELEROMETER

    #: Standard deviation of the acceleration noise (m/s^2).
    NOISE_SIGMA = 0.05

    def __init__(self, instance: int = 0, role=None, noise_seed: int = 0) -> None:
        if role is None:
            from repro.sensors.base import SensorRole

            role = SensorRole.PRIMARY if instance == 0 else SensorRole.BACKUP
        super().__init__(instance=instance, role=role, noise_seed=noise_seed)
        self._bias = tuple(self._rng.uniform(-0.05, 0.05) for _ in range(3))

    def _measure(self, state: VehicleState) -> Dict[str, float]:
        accel_north, accel_east, accel_up = state.acceleration
        roll, pitch, yaw = state.attitude.as_tuple()

        # Rotate the inertial-frame acceleration (plus gravity reaction)
        # into the body frame using a small-angle-friendly exact rotation
        # about yaw then pitch/roll.  For the purposes of the estimator the
        # dominant terms are what matter.
        specific_up = accel_up + GRAVITY
        forward = accel_north * math.cos(yaw) + accel_east * math.sin(yaw)
        right = -accel_north * math.sin(yaw) + accel_east * math.cos(yaw)
        body_x = forward * math.cos(pitch) - specific_up * math.sin(pitch)
        body_y = right * math.cos(roll) + specific_up * math.sin(roll)
        body_z = (
            specific_up * math.cos(pitch) * math.cos(roll)
            + forward * math.sin(pitch)
            - right * math.sin(roll)
        )
        return {
            "accel_x": body_x + self._bias[0] + self._noise(self.NOISE_SIGMA),
            "accel_y": body_y + self._bias[1] + self._noise(self.NOISE_SIGMA),
            "accel_z": body_z + self._bias[2] + self._noise(self.NOISE_SIGMA),
        }
