"""Table V: previously-known, re-inserted bugs triggered by Avis.

The paper re-inserts five previously reported bugs and finds unsafe
conditions for all of them with Avis (in at most 21 simulations each)
while Stratified BFI finds two and BFI/random none.  The benchmark
re-inserts each bug into the corresponding firmware flavour, runs an
Avis and a Stratified BFI campaign, and reports whether each approach
rediscovered the bug and after how many simulations.

The 5 bugs x 2 strategies matrix runs as one sharded campaign grid:
each (bug, strategy) cell is an independent campaign, so the engine
executes the whole comparison in a single parallel pass.
"""

import pytest

from _workers import bench_workers

from repro.core.report import format_table
from repro.core.strategies import AvisStrategy, StratifiedBFI
from repro.engine.grid import CampaignGrid, GridCell
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.bugs import all_table5_bugs
from repro.firmware.px4 import Px4Firmware
from repro.workloads.builtin import WaypointFenceWorkload

#: Workload scale (matches the campaign benchmarks in conftest.py).
CAMPAIGN_ALTITUDE = 15.0
CAMPAIGN_BOX_SIDE = 15.0

#: Budget per re-inserted bug campaign (PX4-13291 needs the deeper,
#: multi-failure exploration so it gets a little more room).
REINSERTION_BUDGET = 70.0

PAPER_EXPECTATIONS = {
    "APM-4455": {"avis_simulations": 10, "stratified_found": False},
    "APM-4679": {"avis_simulations": 21, "stratified_found": True},
    "APM-5428": {"avis_simulations": 5, "stratified_found": False},
    "APM-9349": {"avis_simulations": 4, "stratified_found": True},
    "PX4-13291": {"avis_simulations": 18, "stratified_found": False},
}


def _config_for(bug):
    from repro.core.config import RunConfiguration

    firmware_class = ArduPilotFirmware if bug.firmware == "ardupilot" else Px4Firmware
    return RunConfiguration(
        firmware_class=firmware_class,
        workload_factory=lambda: WaypointFenceWorkload(
            altitude=CAMPAIGN_ALTITUDE, box_side=CAMPAIGN_BOX_SIDE
        ),
        reinserted_bugs=(bug.bug_id,),
    )


def test_table5_reinserted_bugs(benchmark, capsys):
    def run_reinsertions():
        bugs = all_table5_bugs()
        cells = [
            GridCell(
                cell_id=f"{bug.bug_id}/{strategy_name}",
                config=_config_for(bug),
                strategy_factory=factory,
                budget_units=REINSERTION_BUDGET,
                profiling_runs=2,
            )
            for bug in bugs
            for strategy_name, factory in (
                ("avis", AvisStrategy),
                ("stratified-bfi", StratifiedBFI),
            )
        ]
        outcome = CampaignGrid(cells, max_workers=bench_workers()).run()
        rows = []
        avis_found_count = 0
        stratified_found_count = 0
        for bug in bugs:
            avis_campaign = outcome.results[f"{bug.bug_id}/avis"]
            stratified_campaign = outcome.results[f"{bug.bug_id}/stratified-bfi"]
            avis_simulations = avis_campaign.simulations_to_find(bug.bug_id)
            stratified_simulations = stratified_campaign.simulations_to_find(bug.bug_id)
            avis_found_count += int(avis_simulations is not None)
            stratified_found_count += int(stratified_simulations is not None)
            rows.append(
                (
                    bug.bug_id,
                    "yes" if avis_simulations is not None else "no",
                    avis_simulations if avis_simulations is not None else "N/A",
                    "yes" if stratified_simulations is not None else "no",
                    stratified_simulations if stratified_simulations is not None else "N/A",
                )
            )
        return rows, avis_found_count, stratified_found_count

    rows, avis_found, stratified_found = benchmark.pedantic(
        run_reinsertions, rounds=1, iterations=1
    )
    table = format_table(
        ["bug id", "Avis found", "Avis sims", "Strat. BFI found", "Strat. BFI sims"], rows
    )
    with capsys.disabled():
        print("\n\nTable V -- re-inserted known bugs "
              "(paper: Avis 5/5 within <= 21 sims, Strat. BFI 2/5):")
        print(table)
    # Reproduction targets: Avis rediscovers most of the re-inserted bugs
    # and at least as many as Stratified BFI.
    assert avis_found >= 3
    assert avis_found >= stratified_found
