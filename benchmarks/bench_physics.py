"""Raw core-loop throughput: reference vs SoA vs adaptive steppers.

The engine-scaling benchmark times whole campaigns; this one isolates
the inner simulation loop.  For each fleet size it builds a bare
:class:`SimulationHarness` (no faults, no monitor, workload never
bound) and steps it a fixed number of micro-steps under each stepper,
recording steps/sec:

* ``reference`` -- the per-vehicle stepper every verdict is pinned to;
* ``soa`` -- the structure-of-arrays batched physics core, which is
  bit-identical to the reference by contract (tests/test_fast_core.py);
* ``adaptive`` -- the quiescence-skipping planner on top of the SoA
  core.  With no fault windows or mode changes the plan is maximally
  quiescent, so this row shows the stepper's ceiling: sensor reads and
  firmware updates amortised over the full stride.

Rates are merged into ``BENCH_engine.json`` as the ``physics`` axis
(read-modify-write, so ordering against bench_engine_scaling.py does
not matter) and gated by ``benchmarks/check_regression.py`` as
calibration-scaled floors: higher is better, so a rate falling below
``baseline / scale / (1 + tolerance)`` fails CI.
"""

import json
import time
from pathlib import Path

from repro.core.config import RunConfiguration
from repro.core.runner import SimulationHarness
from repro.firmware.ardupilot import ArduPilotFirmware

FLEET_SIZES = (1, 2, 3)
STEPPERS = ("reference", "soa", "adaptive")
WARMUP_STEPS = 50
MEASURED_STEPS = 1500
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _config(fleet_size: int, stepper: str) -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        fleet_size=fleet_size,
        stepper=stepper,
    )


def _steps_per_second(fleet_size: int, stepper: str) -> float:
    """Micro-steps per wall-second for one (fleet size, stepper) cell.

    The count passed to ``step`` is always in micro-steps, so the
    adaptive stepper advances exactly as much simulated time as the
    others -- its higher rate comes from fusing work across strides,
    not from doing less simulation.
    """
    harness = SimulationHarness(_config(fleet_size, stepper))
    harness.step(WARMUP_STEPS)
    started = time.perf_counter()
    harness.step(MEASURED_STEPS)
    elapsed = time.perf_counter() - started
    return MEASURED_STEPS / elapsed


def _measure_axis() -> dict:
    axis = {"steps": MEASURED_STEPS}
    for fleet_size in FLEET_SIZES:
        entry = {}
        for stepper in STEPPERS:
            entry[f"{stepper}_steps_per_s"] = _steps_per_second(fleet_size, stepper)
        axis[f"fleet{fleet_size}"] = entry
    return axis


def _merge_axis(axis: dict) -> None:
    """Fold the ``physics`` axis into BENCH_engine.json, keeping any
    axes another benchmark already wrote there."""
    report = {}
    if OUTPUT_PATH.exists():
        try:
            report = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            report = {}
    if not isinstance(report, dict):
        report = {}
    report["physics"] = axis
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def test_physics_throughput(benchmark, capsys):
    axis = benchmark.pedantic(_measure_axis, rounds=1, iterations=1)
    _merge_axis(axis)

    with capsys.disabled():
        print(f"\n\nStepper throughput ({MEASURED_STEPS} micro-steps per cell):")
        for fleet_size in FLEET_SIZES:
            entry = axis[f"fleet{fleet_size}"]
            reference = entry["reference_steps_per_s"]
            row = "  ".join(
                f"{stepper} {entry[f'{stepper}_steps_per_s']:>7.0f}/s"
                for stepper in STEPPERS
            )
            adaptive_gain = entry["adaptive_steps_per_s"] / reference
            print(f"  fleet {fleet_size}: {row}  (adaptive {adaptive_gain:.2f}x)")
        print(f"  merged into {OUTPUT_PATH}")

    # Sanity, not performance: every cell produced a finite rate.
    for fleet_size in FLEET_SIZES:
        for stepper in STEPPERS:
            assert axis[f"fleet{fleet_size}"][f"{stepper}_steps_per_s"] > 0
