"""Figures 5 and 6: search orders and sensor-instance-symmetry pruning."""

from repro.analysis import figure5_search_orders, figure6_pruning_counts
from repro.core.report import format_table


def test_figure5_search_orders(benchmark, capsys):
    orders = benchmark(figure5_search_orders)
    with capsys.disabled():
        print("\n\nFigure 5 -- first scenarios explored on the toy fault space:")
        for strategy, order in orders.items():
            print(f"  {strategy}:")
            for scenario in order:
                print(f"    {scenario}")
    # DFS varies the end of the run first; BFS fails sensors for the whole
    # run first; SABRE goes straight to the mode transitions (t1, t2, t4).
    assert "t5" in orders["depth-first"][1]
    assert "t1" in orders["breadth-first"][1]
    assert orders["sabre"][0].endswith("t1")
    assert any("t4" in scenario for scenario in orders["sabre"])


def test_figure6_symmetry_pruning(benchmark, capsys):
    rows = benchmark(figure6_pruning_counts)
    with capsys.disabled():
        print("\n\nFigure 6 -- sensor-instance symmetry (paper example: 3 compasses, 21 -> 5):")
        print(format_table(["instances", "without pruning", "with symmetry pruning"], rows))
    counts = {row[0]: (row[1], row[2]) for row in rows}
    assert counts[3] == (21, 5)
    assert all(pruned <= unpruned for unpruned, pruned in counts.values())
