"""Perf-regression gate: compare ``BENCH_engine.json`` to the baseline.

CI runs the engine-scaling microbenchmark and then this script.  The
gate fails (exit code 1) when any ``seconds_per_simulation`` metric --
the single-vehicle campaign, the fleet-scaling axis, the traffic-fault
convoy axis, the intermittent-fault (burst) convoy axis, the adaptive
re-runs of the convoy axes, or the batched SABRE campaign -- regresses
more than ``--tolerance`` (default 25%) against the committed
``BENCH_baseline.json``.

Beyond the timing axes the gate asserts three kinds of floors:

* **Missing axes fail.**  A metric the baseline carries but the fresh
  report does not is a gate failure, not a note: a benchmark axis that
  silently stopped being measured would otherwise read as a pass
  forever.  (The reverse -- a baseline from before an axis existed --
  is fine; only baseline metrics are enumerated.)
* **Adaptive speedup floors.**  The quiescence-skipping stepper must
  stay at least ``2.0x`` faster than the reference stepper on the
  traffic and burst convoy axes.  These are single-process ratios
  measured in the same run, so they are asserted on every runner,
  including single-core CI.
* **Physics throughput floors.**  The ``physics`` axis records
  harness steps/sec per stepper and fleet size; each rate must stay
  above ``baseline / scale / (1 + tolerance)``.

Two things keep the gate honest across heterogeneous runners:

* **Calibration scaling** -- both reports record ``calibration_s``, the
  wall-clock of a fixed pure-python workload.  Thresholds are scaled by
  the ratio of the two calibrations, so a slower CI runner is not
  flagged for being slow and a faster one cannot hide a real
  regression behind raw hardware speed.
* **Core-count gating** -- parallel speedup assertions are skipped when
  ``usable_cpus < 2``: a process pool cannot beat serial execution of
  CPU-bound simulations on a single core, which is why single-core CI
  speedups read ~1.0x.  (Adaptive-stepper speedups are exempt: they
  compare two serial runs.)

Usage::

    python benchmarks/check_regression.py \
        [--baseline BENCH_baseline.json] [--current BENCH_engine.json] \
        [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"
DEFAULT_CURRENT = REPO_ROOT / "BENCH_engine.json"
DEFAULT_TOLERANCE = 0.25

#: Parallel-speedup metrics and the floor each must clear on machines
#: with at least two usable cores.  The floors are deliberately loose --
#: they catch "the pool stopped helping at all", not scheduler noise.
SPEEDUP_FLOORS: Sequence[Tuple[Tuple[str, ...], float]] = (
    (("speedup_workers2",), 1.0),
    (("sabre", "speedup_pool4"), 0.9),
)

#: Adaptive-stepper speedups and the floor each must clear on every
#: runner.  Both sides of the ratio are serial runs from the same
#: process, so core count is irrelevant; the 2.0x floor is the
#: headline claim of the fast simulation core and is asserted as such.
ADAPTIVE_FLOORS: Sequence[Tuple[Tuple[str, ...], float]] = (
    (("traffic", "adaptive_speedup"), 2.0),
    (("burst", "adaptive_speedup"), 2.0),
)


def _lookup(report: dict, path: Tuple[str, ...]) -> Optional[float]:
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def _seconds_metrics(report: dict) -> Iterator[Tuple[str, float]]:
    """Every ``seconds_per_simulation`` metric a report carries."""
    value = _lookup(report, ("seconds_per_simulation",))
    if value is not None:
        yield "seconds_per_simulation", value
    for axis_key in ("fleet_scaling",):
        axis = report.get(axis_key)
        if isinstance(axis, dict):
            for entry_key in sorted(axis):
                value = _lookup(axis, (entry_key, "seconds_per_simulation"))
                if value is not None:
                    yield f"{axis_key}.{entry_key}.seconds_per_simulation", value
    for flat_axis in ("traffic", "burst", "sabre"):
        value = _lookup(report, (flat_axis, "seconds_per_simulation"))
        if value is not None:
            yield f"{flat_axis}.seconds_per_simulation", value
    for flat_axis in ("traffic", "burst"):
        value = _lookup(report, (flat_axis, "seconds_per_simulation_adaptive"))
        if value is not None:
            yield f"{flat_axis}.seconds_per_simulation_adaptive", value


def _rate_metrics(report: dict) -> Iterator[Tuple[str, float]]:
    """Every ``*_steps_per_s`` throughput metric (the ``physics`` axis).

    Rates invert the timing logic: higher is better, so the gate
    asserts a *floor* rather than a ceiling.
    """
    axis = report.get("physics")
    if not isinstance(axis, dict):
        return
    for entry_key in sorted(axis):
        entry = axis[entry_key]
        if not isinstance(entry, dict):
            continue
        for metric_key in sorted(entry):
            if not metric_key.endswith("_steps_per_s"):
                continue
            value = _lookup(entry, (metric_key,))
            if value is not None:
                yield f"physics.{entry_key}.{metric_key}", value


def check_regression(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[str], List[str]]:
    """Compare ``current`` against ``baseline``.

    Returns ``(failures, notes)``: a non-empty ``failures`` list means
    the gate must fail; ``notes`` document skipped or scaled checks and
    the measured-vs-baseline numbers of every passing axis.  Every axis
    is always checked -- the gate reports all failures, never just the
    first one.
    """
    failures: List[str] = []
    notes: List[str] = []

    scale = 1.0
    base_cal = _lookup(baseline, ("calibration_s",))
    cur_cal = _lookup(current, ("calibration_s",))
    if base_cal and cur_cal and base_cal > 0:
        scale = cur_cal / base_cal
        notes.append(
            f"calibration: baseline {base_cal:.4f}s, current {cur_cal:.4f}s "
            f"-> thresholds scaled by {scale:.2f}x"
        )
    else:
        notes.append("calibration missing from a report: raw thresholds used")

    current_seconds = dict(_seconds_metrics(current))
    for name, base_value in _seconds_metrics(baseline):
        cur_value = current_seconds.get(name)
        if cur_value is None:
            failures.append(
                f"{name}: present in baseline but missing from the current "
                "report -- the axis stopped being measured"
            )
            continue
        allowed = base_value * scale * (1.0 + tolerance)
        if cur_value > allowed:
            failures.append(
                f"{name}: {cur_value:.4f}s/sim exceeds allowed "
                f"{allowed:.4f}s/sim (baseline {base_value:.4f}s/sim, "
                f"scale {scale:.2f}x, tolerance {tolerance:.0%})"
            )
        else:
            # Passing axes explain themselves too: measured vs baseline
            # is what lets a reviewer spot a creeping (sub-tolerance)
            # regression before it trips the gate.
            notes.append(
                f"{name}: measured {cur_value:.4f}s/sim vs baseline "
                f"{base_value:.4f}s/sim, within allowed {allowed:.4f}s/sim"
            )

    current_rates = dict(_rate_metrics(current))
    for name, base_value in _rate_metrics(baseline):
        cur_value = current_rates.get(name)
        if cur_value is None:
            failures.append(
                f"{name}: present in baseline but missing from the current "
                "report -- the axis stopped being measured"
            )
            continue
        floor = base_value / scale / (1.0 + tolerance)
        if cur_value < floor:
            failures.append(
                f"{name}: {cur_value:.0f} steps/s is below the allowed floor "
                f"{floor:.0f} steps/s (baseline {base_value:.0f} steps/s, "
                f"scale {scale:.2f}x, tolerance {tolerance:.0%})"
            )
        else:
            notes.append(
                f"{name}: measured {cur_value:.0f} steps/s vs baseline "
                f"{base_value:.0f} steps/s, above floor {floor:.0f} steps/s"
            )

    for path, floor in ADAPTIVE_FLOORS:
        name = ".".join(path)
        value = _lookup(current, path)
        if value is None:
            if _lookup(baseline, path) is not None:
                failures.append(
                    f"{name}: present in baseline but missing from the "
                    "current report -- the axis stopped being measured"
                )
            else:
                notes.append(f"{name}: not in either report, skipped")
            continue
        if value < floor:
            failures.append(
                f"{name}: {value:.2f}x is below the {floor:.2f}x floor "
                "(adaptive stepper stopped paying for itself)"
            )
        else:
            notes.append(f"{name}: {value:.2f}x >= {floor:.2f}x floor")

    cpus = _lookup(current, ("usable_cpus",)) or 1
    if cpus < 2:
        notes.append(
            "usable_cpus < 2: parallel speedup assertions skipped "
            "(a pool cannot beat serial on one core; speedups read ~1.0x)"
        )
    else:
        for path, floor in SPEEDUP_FLOORS:
            name = ".".join(path)
            value = _lookup(current, path)
            if value is None:
                if _lookup(baseline, path) is not None:
                    failures.append(
                        f"{name}: present in baseline but missing from the "
                        "current report -- the axis stopped being measured"
                    )
                else:
                    notes.append(f"{name}: not in either report, skipped")
                continue
            if value < floor:
                failures.append(
                    f"{name}: {value:.2f}x is below the {floor:.2f}x floor "
                    f"on a {cpus}-cpu runner"
                )
            else:
                notes.append(f"{name}: {value:.2f}x >= {floor:.2f}x floor")

    return failures, notes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline report (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=DEFAULT_CURRENT,
        help=f"freshly measured report (default: {DEFAULT_CURRENT.name})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default: 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {args.baseline}: {error}", file=sys.stderr)
        return 2
    try:
        current = json.loads(args.current.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read current report {args.current}: {error}", file=sys.stderr)
        return 2

    failures, notes = check_regression(baseline, current, args.tolerance)
    for note in notes:
        print(f"  note: {note}")
    if failures:
        print("PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
