"""Table III: unsafe scenarios identified by each approach.

Paper numbers (2-hour budget): Avis 165, Stratified BFI 70, BFI 2,
Random 5 -- Avis at least 2.4x Stratified BFI and far ahead of BFI and
random injection.  The benchmark uses a scaled-down simulation budget;
the reproduction target is the ordering and the Avis/Stratified-BFI
ratio, not the absolute counts.
"""

from repro.core.report import campaign_table


def test_table3_unsafe_scenarios(evaluation_campaigns, benchmark, capsys):
    def collect():
        totals = {}
        for (firmware, strategy), campaign in evaluation_campaigns.items():
            totals.setdefault(strategy, 0)
            totals[strategy] += campaign.unsafe_scenario_count
        return totals

    totals = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n\nTable III -- unsafe scenarios identified by each approach:")
        print(campaign_table(list(evaluation_campaigns.values())))
        print(f"Totals across both firmwares: {totals}")
        print("Paper totals: Avis 165, Strat. BFI 70, BFI 2, Random 5")
    assert totals["avis"] > totals["stratified-bfi"]
    assert totals["avis"] > totals["random"]
    assert totals["avis"] >= totals["bfi"]
    assert totals["avis"] >= 8
