"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md for the index).  The campaigns are scaled down
from the paper's two-hour budgets to simulation budgets that finish in
CI time; EXPERIMENTS.md records the measured numbers next to the
published ones.

The shared ``evaluation_campaigns`` fixture runs the Table III / Table IV
campaign matrix once per benchmark session so the individual benchmarks
only format and check their slice of it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    RandomInjection,
    StratifiedBFI,
)
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.workloads.builtin import WaypointFenceWorkload

#: Budget (in simulation-equivalent units) per approach per firmware.
CAMPAIGN_BUDGET_UNITS = 60.0
#: Workload scale used by the campaign benchmarks (smaller than the
#: paper's 20 m box so a full campaign matrix stays under a few minutes).
CAMPAIGN_ALTITUDE = 15.0
CAMPAIGN_BOX_SIDE = 15.0


def build_config(firmware_class, **kwargs) -> RunConfiguration:
    """A campaign configuration for one firmware flavour."""
    return RunConfiguration(
        firmware_class=firmware_class,
        workload_factory=lambda: WaypointFenceWorkload(
            altitude=CAMPAIGN_ALTITUDE, box_side=CAMPAIGN_BOX_SIDE
        ),
        **kwargs,
    )


def strategy_set():
    """The four approaches of Table I/III in presentation order."""
    return [
        AvisStrategy(),
        StratifiedBFI(),
        BayesianFaultInjection(),
        RandomInjection(),
    ]


@pytest.fixture(scope="session")
def evaluation_campaigns() -> Dict[Tuple[str, str], CampaignResult]:
    """Campaign results keyed by (firmware, strategy name).

    This is the shared data behind the Table II / III / IV benchmarks.
    """
    results: Dict[Tuple[str, str], CampaignResult] = {}
    for firmware_class in (ArduPilotFirmware, Px4Firmware):
        config = build_config(firmware_class)
        avis = Avis(config, profiling_runs=2, budget_units=CAMPAIGN_BUDGET_UNITS)
        avis.profile()
        for strategy in strategy_set():
            campaign = avis.check(strategy=strategy)
            results[(firmware_class.name, strategy.name)] = campaign
    return results
