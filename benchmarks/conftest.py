"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md for the index).  The campaigns are scaled down
from the paper's two-hour budgets to simulation budgets that finish in
CI time; EXPERIMENTS.md records the measured numbers next to the
published ones.

The shared ``evaluation_campaigns`` fixture runs the Table III / Table IV
campaign matrix once per benchmark session so the individual benchmarks
only format and check their slice of it.  The matrix is executed through
the campaign-grid engine: every (firmware, strategy) cell is an
independent deterministic campaign, so the grid shards them across
worker processes (``REPRO_BENCH_WORKERS`` overrides the worker count)
and produces exactly the results of the old sequential loop.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from _workers import bench_workers

from repro.core.avis import CampaignResult
from repro.core.config import RunConfiguration
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    RandomInjection,
    StratifiedBFI,
)
from repro.engine.grid import CampaignGrid, GridCell
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.workloads.builtin import WaypointFenceWorkload

#: Budget (in simulation-equivalent units) per approach per firmware.
CAMPAIGN_BUDGET_UNITS = 60.0
#: Workload scale used by the campaign benchmarks (smaller than the
#: paper's 20 m box so a full campaign matrix stays under a few minutes).
CAMPAIGN_ALTITUDE = 15.0
CAMPAIGN_BOX_SIDE = 15.0


def build_config(firmware_class, **kwargs) -> RunConfiguration:
    """A campaign configuration for one firmware flavour."""
    return RunConfiguration(
        firmware_class=firmware_class,
        workload_factory=lambda: WaypointFenceWorkload(
            altitude=CAMPAIGN_ALTITUDE, box_side=CAMPAIGN_BOX_SIDE
        ),
        **kwargs,
    )


@pytest.fixture(scope="session")
def evaluation_campaigns() -> Dict[Tuple[str, str], CampaignResult]:
    """Campaign results keyed by (firmware, strategy name).

    This is the shared data behind the Table II / III / IV benchmarks.
    The full firmware x strategy grid runs in one parallel pass.
    """
    strategy_factories = {
        "avis": AvisStrategy,
        "stratified-bfi": StratifiedBFI,
        "bfi": BayesianFaultInjection,
        "random": RandomInjection,
    }
    cells = [
        GridCell(
            cell_id=f"{firmware_class.name}/{strategy_name}",
            config=build_config(firmware_class),
            strategy_factory=factory,
            budget_units=CAMPAIGN_BUDGET_UNITS,
            profiling_runs=2,
        )
        for firmware_class in (ArduPilotFirmware, Px4Firmware)
        for strategy_name, factory in strategy_factories.items()
    ]
    outcome = CampaignGrid(cells, max_workers=bench_workers()).run()
    return {
        (campaign.firmware_name, campaign.strategy_name): campaign
        for campaign in outcome.results.values()
    }
