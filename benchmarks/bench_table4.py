"""Table IV: unsafe scenarios identified per operating-mode category.

Paper shape: Avis finds unsafe scenarios in every mode category
(takeoff / manual / waypoint / land) while the baselines concentrate in
the categories their exploration happens to reach.
"""

from repro.core.report import per_mode_table


def test_table4_per_mode_breakdown(evaluation_campaigns, benchmark, capsys):
    def collect():
        combined = {}
        for (firmware, strategy), campaign in evaluation_campaigns.items():
            row = combined.setdefault(strategy, {"takeoff": 0, "manual": 0, "waypoint": 0, "land": 0})
            for category, count in campaign.per_mode_counts.items():
                row[category] = row.get(category, 0) + count
        return combined

    combined = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n\nTable IV -- unsafe scenarios per mode category:")
        print(per_mode_table(list(evaluation_campaigns.values())))
        print(f"Totals across both firmwares: {combined}")
    avis_row = combined["avis"]
    # Avis covers multiple mode categories (the waypoint workload does not
    # exercise the manual modes, matching a zero/near-zero manual column).
    categories_covered = sum(1 for count in avis_row.values() if count > 0)
    assert categories_covered >= 2
    assert avis_row["takeoff"] >= 1 or avis_row["waypoint"] >= 1
    for strategy, row in combined.items():
        if strategy == "avis":
            continue
        assert categories_covered >= sum(1 for count in row.values() if count > 0)
