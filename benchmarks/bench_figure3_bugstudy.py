"""Figure 3 and Findings 1-3: the bug-study statistics."""

from repro.bugstudy import build_dataset, summarize
from repro.core.report import format_table


def test_figure3_bug_study(benchmark, capsys):
    summary = benchmark(lambda: summarize(build_dataset()))
    with capsys.disabled():
        print("\n\nFigure 3(A) -- bugs per root cause (paper: semantic 68%, sensor 20%):")
        print(format_table(["root cause", "count"], summary.figure3a_rows()))
        print("Figure 3(B) -- sensor-bug reproducibility (paper: 47% default settings):")
        print(format_table(["conditions", "count"], summary.figure3b_rows()))
        print("Figure 3(C) -- sensor-bug outcomes (paper: ~34% crash/fly-away):")
        print(format_table(["outcome", "count"], summary.figure3c_rows()))
    assert summary.total_bugs == 215
    assert abs(summary.root_cause_shares["sensor"] - 0.20) < 0.02
    assert abs(summary.root_cause_shares["semantic"] - 0.68) < 0.02
    assert abs(summary.sensor_share_of_serious - 0.40) < 0.03
    assert abs(summary.sensor_default_reproducible_share - 0.47) < 0.02
    assert abs(summary.sensor_serious_share - 0.34) < 0.02
    assert abs(summary.semantic_asymptomatic_share - 0.90) < 0.02
