"""Worker-count policy shared by the benchmark harnesses."""

from __future__ import annotations

import os


def bench_workers() -> int:
    """Worker processes for benchmark grids (REPRO_BENCH_WORKERS wins)."""
    override = os.environ.get("REPRO_BENCH_WORKERS")
    if override:
        return max(1, int(override))
    return max(1, min(4, os.cpu_count() or 1))
