"""Table II: previously-unknown bugs found by Avis (vs Stratified BFI).

The paper lists ten previously-unknown bugs, all found by Avis and four
of them also found by Stratified BFI.  The benchmark re-runs both
approaches' campaigns on both firmware flavours and reports, for every
Table II bug, whether each approach triggered an unsafe condition
attributable to it within the benchmark budget.
"""

from repro.core.report import format_table
from repro.firmware.bugs import all_table2_bugs


def test_table2_unknown_bugs(evaluation_campaigns, benchmark, capsys):
    def collect():
        rows = []
        avis_found = 0
        for bug in all_table2_bugs():
            avis_campaign = evaluation_campaigns[(bug.firmware, "avis")]
            stratified_campaign = evaluation_campaigns[(bug.firmware, "stratified-bfi")]
            found_by_avis = bug.bug_id in avis_campaign.triggered_bug_ids
            found_by_stratified = bug.bug_id in stratified_campaign.triggered_bug_ids
            avis_found += int(found_by_avis)
            rows.append(
                (
                    bug.bug_id,
                    bug.firmware,
                    bug.symptom.value,
                    bug.sensor_type.value,
                    bug.failure_moment,
                    "yes" if found_by_avis else "no",
                    "yes" if found_by_stratified else "no",
                )
            )
        return rows, avis_found

    rows, avis_found = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = format_table(
        ["report #", "firmware", "symptom", "sensor failure", "failure moment", "Avis", "Strat. BFI"],
        rows,
    )
    with capsys.disabled():
        print("\n\nTable II -- previously unknown bugs (paper: Avis 10/10, Strat. BFI 4/10):")
        print(table)
        print(f"Avis found {avis_found}/10 within the benchmark budget.")
    # Reproduction target: Avis finds the large majority of the ten bugs
    # within the scaled-down budget, and at least as many as Stratified BFI.
    stratified_found = sum(1 for row in rows if row[6] == "yes")
    assert avis_found >= 6
    assert avis_found >= stratified_found
