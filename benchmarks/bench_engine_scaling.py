"""Engine scaling: serial vs. 2- and 4-worker wall-clock on a fixed grid.

A fixed, seeded 32-scenario campaign (the same scenarios, in the same
order) is executed through :class:`SerialBackend` and through
:class:`ProcessPoolBackend` with 2 and 4 workers.  The measured
wall-clock times and speedups are written to ``BENCH_engine.json`` next
to the repository root, and the backends are asserted to agree on every
per-scenario outcome (the determinism contract).

The speedup assertion (>1.5x with 4 workers) only applies on machines
with at least two usable cores -- a process pool cannot beat serial
execution of CPU-bound simulations on a single core, and CI containers
are frequently single-core.  The JSON records the measured numbers and
the core count either way.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.config import RunConfiguration
from repro.engine.backends import ProcessPoolBackend, SerialBackend
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.suite import iris_sensor_suite
from repro.workloads.builtin import AutoWorkload

SCENARIO_COUNT = 32
RNG_SEED = 17
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=8.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
    )


def _fixed_scenarios() -> list:
    """32 deterministic scenarios over the full sensor suite."""
    rng = random.Random(RNG_SEED)
    sensors = iris_sensor_suite().sensor_ids
    scenarios = []
    while len(scenarios) < SCENARIO_COUNT:
        count = rng.randint(1, 2)
        chosen = rng.sample(sensors, count)
        scenario = FaultScenario(
            FaultSpec(sensor_id, round(rng.uniform(0.0, 30.0), 2))
            for sensor_id in chosen
        )
        if scenario not in scenarios:
            scenarios.append(scenario)
    return scenarios


def _outcome_signature(results) -> list:
    return [
        (str(result.scenario), result.steps, len(result.collisions),
         tuple(result.triggered_bugs))
        for result in results
    ]


def test_engine_scaling(benchmark, capsys):
    config = _config()
    scenarios = _fixed_scenarios()

    def measure():
        timings = {}
        signatures = {}
        for label, backend in (
            ("serial", SerialBackend()),
            ("workers2", ProcessPoolBackend(max_workers=2)),
            ("workers4", ProcessPoolBackend(max_workers=4)),
        ):
            started = time.perf_counter()
            results = backend.run_scenarios(config, None, scenarios)
            timings[label] = time.perf_counter() - started
            signatures[label] = _outcome_signature(results)
        return timings, signatures

    timings, signatures = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Determinism: every backend produced identical per-scenario outcomes.
    assert signatures["workers2"] == signatures["serial"]
    assert signatures["workers4"] == signatures["serial"]

    cpus = _usable_cpus()
    report = {
        "scenario_count": SCENARIO_COUNT,
        "usable_cpus": cpus,
        "serial_s": timings["serial"],
        "workers2_s": timings["workers2"],
        "workers4_s": timings["workers4"],
        "speedup_workers2": timings["serial"] / timings["workers2"],
        "speedup_workers4": timings["serial"] / timings["workers4"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print(f"\n\nEngine scaling ({SCENARIO_COUNT} scenarios, {cpus} cpu(s)):")
        print(f"  serial    : {report['serial_s']:.2f}s")
        print(f"  2 workers : {report['workers2_s']:.2f}s "
              f"({report['speedup_workers2']:.2f}x)")
        print(f"  4 workers : {report['workers4_s']:.2f}s "
              f"({report['speedup_workers4']:.2f}x)")
        print(f"  written to {OUTPUT_PATH}")

    if cpus >= 4:
        assert report["speedup_workers4"] > 1.5
    elif cpus >= 2:
        assert report["speedup_workers2"] > 1.2
    else:
        pytest.xfail("single-core machine: parallel speedup not measurable")
