"""Engine scaling: worker-count, fleet-size, traffic-fault, burst and
batched-SABRE axes.

Five scaling axes are measured and written to ``BENCH_engine.json``
next to the repository root:

* **Workers** -- a fixed, seeded 32-scenario campaign (the same
  scenarios, in the same order) executed through :class:`SerialBackend`
  and through :class:`ProcessPoolBackend` with 2 and 4 workers, with the
  backends asserted to agree on every per-scenario outcome (the
  determinism contract).
* **Fleet size** -- a fixed batch of battery-fault scenarios flown by
  the multi-pad fleet workload at fleet sizes 2 and 3, recording
  seconds per simulation so the cost of hosting more vehicles per run
  is tracked over time.
* **Traffic faults** -- a fixed batch of coordination-fault scenarios
  (beacon dropout/freeze on the lead) flown by the beacon-driven
  convoy, so the cost of the traffic channel plus the longest-running
  fleet workload is tracked over time.
* **Burst** -- the same convoy under *intermittent* coordination faults
  (finite ``duration_s``): recovery re-engages the follower's tracking
  loop mid-mission, so these runs exercise the recovery machinery end
  to end and tend to run the full mission (no early unsafe abort),
  making the axis a sensitive cost probe for the recovery-window
  feature.

  The traffic and burst axes are each re-run under the adaptive
  (quiescence-skipping) stepper with the *same scenarios*; the verdict
  signatures (outcome, collisions, injection/recovery counts) are
  asserted equal before ``adaptive_speedup`` is recorded, because a
  faster stepper that changes verdicts is a bug, not a win.  The
  regression gate holds this speedup above its 2.0x floor.
* **SABRE** -- the paper's headline strategy run as a full (profiled,
  budgeted) campaign through the batch protocol: serial backend versus
  a 4-worker pool at the recorded ``per_dequeue``, with the two
  campaigns asserted bit-identical (same scenarios, same order, same
  found-bug set) before the wall-clocks are compared.

The report also records ``calibration_s`` -- the wall-clock of a fixed
pure-python workload -- so ``benchmarks/check_regression.py`` can scale
the committed ``BENCH_baseline.json`` thresholds to the speed of the
machine actually running CI.

Speedups are *asserted* only on machines with at least two usable cores
(a process pool cannot beat serial execution of CPU-bound simulations
on a single core, and CI containers are frequently single-core); on a
single core the measured numbers are annotated in the JSON and the
console instead.
"""

import json
import os
import random
import time
from dataclasses import replace
from pathlib import Path

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.core.strategies import AvisStrategy
from repro.engine.backends import ProcessPoolBackend, SerialBackend
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    TrafficFaultKind,
    TrafficFaultSpec,
)
from repro.sensors.base import SensorId, SensorType
from repro.sensors.suite import iris_sensor_suite
from repro.workloads.builtin import AutoWorkload
from repro.workloads.fleet import ConvoyFollowWorkload, MultiPadTakeoffLandWorkload

SCENARIO_COUNT = 32
RNG_SEED = 17
FLEET_SIZES = (2, 3)
FLEET_SCENARIO_COUNT = 4
TRAFFIC_SCENARIO_COUNT = 4
BURST_SCENARIO_COUNT = 4
BURST_DURATION_S = 20.0
SABRE_BUDGET = 10.0
SABRE_PER_DEQUEUE = 4
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _calibrate() -> float:
    """Wall-clock of a fixed pure-python workload (machine speed probe).

    The regression gate scales the committed baseline's absolute
    timings by the ratio of this number across machines, so a slower
    CI runner does not read as a regression and a faster one does not
    mask one.
    """
    def spin() -> float:
        started = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i * i
        return time.perf_counter() - started

    spin()  # warm-up
    return min(spin() for _ in range(3))


def _config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=8.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
    )


def _fixed_scenarios() -> list:
    """32 deterministic scenarios over the full sensor suite."""
    rng = random.Random(RNG_SEED)
    sensors = iris_sensor_suite().sensor_ids
    scenarios = []
    while len(scenarios) < SCENARIO_COUNT:
        count = rng.randint(1, 2)
        chosen = rng.sample(sensors, count)
        scenario = FaultScenario(
            FaultSpec(sensor_id, round(rng.uniform(0.0, 30.0), 2))
            for sensor_id in chosen
        )
        if scenario not in scenarios:
            scenarios.append(scenario)
    return scenarios


def _fleet_config(fleet_size: int) -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: MultiPadTakeoffLandWorkload(fleet_size=fleet_size),
        fleet_size=fleet_size,
        max_sim_time_s=160.0,
    )


def _fleet_scenarios(fleet_size: int) -> list:
    """Battery faults spread across the fleet and the mission timeline."""
    scenarios = []
    for index in range(FLEET_SCENARIO_COUNT):
        vehicle = index % fleet_size
        scenarios.append(
            FaultScenario(
                [
                    FaultSpec(
                        SensorId(SensorType.BATTERY, 0, vehicle=vehicle),
                        10.0 + 3.0 * index,
                    )
                ]
            )
        )
    return scenarios


def _measure_fleet_axis() -> dict:
    """Seconds per simulation at each fleet size (serial backend)."""
    axis = {}
    for fleet_size in FLEET_SIZES:
        config = _fleet_config(fleet_size)
        scenarios = _fleet_scenarios(fleet_size)
        started = time.perf_counter()
        results = SerialBackend().run_scenarios(config, None, scenarios)
        elapsed = time.perf_counter() - started
        separations = [
            r.min_separation_m for r in results if r.min_separation_m is not None
        ]
        axis[f"fleet{fleet_size}"] = {
            "fleet_size": fleet_size,
            "scenario_count": len(scenarios),
            "wall_s": elapsed,
            "seconds_per_simulation": elapsed / len(scenarios),
            "min_separation_m": min(separations) if separations else None,
        }
    return axis


def _traffic_config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
    )


def _traffic_scenarios() -> list:
    """Coordination faults on the lead's beacons along the corridor."""
    kinds = (TrafficFaultKind.DROPOUT, TrafficFaultKind.FREEZE)
    return [
        FaultScenario(
            [TrafficFaultSpec(0, kinds[index % len(kinds)], 12.0 + 9.0 * index)]
        )
        for index in range(TRAFFIC_SCENARIO_COUNT)
    ]


def _verdict_signature(results) -> list:
    """What the campaign *concluded*, independent of how it was stepped.

    The adaptive stepper is allowed to change wall-clock, never
    verdicts: outcome, collision presence, and the injection/recovery
    record must survive the stepping strategy unchanged.
    """
    return [
        (
            str(result.scenario),
            result.workload_result.outcome.value if result.workload_result else "n/a",
            bool(result.collisions),
            len(result.traffic_injections),
            sum(1 for record in result.traffic_injections if record.recovered),
        )
        for result in results
    ]


def _measure_adaptive(config, scenarios, reference_results, reference_wall) -> dict:
    """Re-run ``scenarios`` under the adaptive stepper; assert verdicts.

    Returns the fields merged into the reference axis dict.  The
    verdict-signature assertion runs *before* any timing is recorded:
    a speedup measured against diverging outcomes would be meaningless.
    """
    adaptive_config = replace(config, stepper="adaptive")
    started = time.perf_counter()
    results = SerialBackend().run_scenarios(adaptive_config, None, scenarios)
    elapsed = time.perf_counter() - started
    assert _verdict_signature(results) == _verdict_signature(reference_results), (
        "adaptive stepper changed campaign verdicts"
    )
    return {
        "wall_s_adaptive": elapsed,
        "seconds_per_simulation_adaptive": elapsed / len(scenarios),
        "adaptive_speedup": reference_wall / elapsed if elapsed > 0 else None,
    }


def _measure_traffic_axis() -> dict:
    """Seconds per simulation for traffic-fault convoy campaigns."""
    config = _traffic_config()
    scenarios = _traffic_scenarios()
    started = time.perf_counter()
    results = SerialBackend().run_scenarios(config, None, scenarios)
    elapsed = time.perf_counter() - started
    separations = [
        r.min_separation_m for r in results if r.min_separation_m is not None
    ]
    axis = {
        "workload": "convoy-follow",
        "scenario_count": len(scenarios),
        "wall_s": elapsed,
        "seconds_per_simulation": elapsed / len(scenarios),
        "min_separation_m": min(separations) if separations else None,
        "traffic_injections": sum(len(r.traffic_injections) for r in results),
    }
    axis.update(_measure_adaptive(config, scenarios, results, elapsed))
    return axis


def _burst_scenarios() -> list:
    """Intermittent (recovering) dropouts on the lead's beacons."""
    return [
        FaultScenario(
            [
                TrafficFaultSpec(
                    0,
                    TrafficFaultKind.DROPOUT,
                    9.0 + 2.0 * index,
                    duration_s=BURST_DURATION_S,
                )
            ]
        )
        for index in range(BURST_SCENARIO_COUNT)
    ]


def _measure_burst_axis() -> dict:
    """Seconds per simulation for intermittent-dropout convoy runs."""
    config = _traffic_config()
    scenarios = _burst_scenarios()
    started = time.perf_counter()
    results = SerialBackend().run_scenarios(config, None, scenarios)
    elapsed = time.perf_counter() - started
    separations = [
        r.min_separation_m for r in results if r.min_separation_m is not None
    ]
    recoveries = sum(
        1
        for result in results
        for record in result.traffic_injections
        if record.recovered
    )
    axis = {
        "workload": "convoy-follow",
        "burst_duration_s": BURST_DURATION_S,
        "scenario_count": len(scenarios),
        "wall_s": elapsed,
        "seconds_per_simulation": elapsed / len(scenarios),
        "min_separation_m": min(separations) if separations else None,
        "recoveries": recoveries,
    }
    axis.update(_measure_adaptive(config, scenarios, results, elapsed))
    return axis


def _sabre_campaign(backend):
    """One full batched-SABRE campaign; returns (campaign, wall seconds,
    engine round stats)."""
    avis = Avis(
        _config(), profiling_runs=2, budget_units=SABRE_BUDGET, backend=backend
    )
    avis.profile()  # profiling excluded from the timed section
    started = time.perf_counter()
    campaign = avis.check(
        strategy=AvisStrategy(max_scenarios_per_dequeue=SABRE_PER_DEQUEUE)
    )
    elapsed = time.perf_counter() - started
    stats = dict(avis.engine.last_stats)
    avis.engine.close()  # spec-built backends are engine-owned
    return campaign, elapsed, stats


def _measure_sabre_axis() -> dict:
    """Batched SABRE, serial vs pool: the paper's headline strategy is
    the one axis the PR 1 worker pool could not accelerate before the
    dequeue-level batch protocol existed."""
    serial_campaign, serial_s, serial_stats = _sabre_campaign("serial")
    pool_campaign, pool_s, _ = _sabre_campaign("pool:4")

    # Determinism before performance: the two campaigns must be
    # bit-identical or the speedup is meaningless.
    assert [str(r.scenario) for r in pool_campaign.results] == [
        str(r.scenario) for r in serial_campaign.results
    ]
    assert pool_campaign.triggered_bug_ids == serial_campaign.triggered_bug_ids
    assert pool_campaign.budget_spent == serial_campaign.budget_spent

    return {
        "budget_units": SABRE_BUDGET,
        "per_dequeue": SABRE_PER_DEQUEUE,
        "simulations": serial_campaign.simulations,
        "unsafe_scenarios": serial_campaign.unsafe_scenario_count,
        "proposal_rounds": serial_stats["rounds"],
        "serial_s": serial_s,
        "pool_s": pool_s,
        "speedup_pool4": serial_s / pool_s if pool_s > 0 else None,
        "seconds_per_simulation": (
            serial_s / serial_campaign.simulations
            if serial_campaign.simulations
            else None
        ),
    }


def _outcome_signature(results) -> list:
    return [
        (str(result.scenario), result.steps, len(result.collisions),
         tuple(result.triggered_bugs))
        for result in results
    ]


def test_engine_scaling(benchmark, capsys):
    config = _config()
    scenarios = _fixed_scenarios()

    def measure():
        timings = {}
        signatures = {}
        for label, backend in (
            ("serial", SerialBackend()),
            ("workers2", ProcessPoolBackend(max_workers=2)),
            ("workers4", ProcessPoolBackend(max_workers=4)),
        ):
            started = time.perf_counter()
            results = backend.run_scenarios(config, None, scenarios)
            timings[label] = time.perf_counter() - started
            signatures[label] = _outcome_signature(results)
        return timings, signatures

    timings, signatures = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Determinism: every backend produced identical per-scenario outcomes.
    assert signatures["workers2"] == signatures["serial"]
    assert signatures["workers4"] == signatures["serial"]

    fleet_axis = _measure_fleet_axis()
    traffic_axis = _measure_traffic_axis()
    burst_axis = _measure_burst_axis()
    sabre_axis = _measure_sabre_axis()

    cpus = _usable_cpus()
    single_core = cpus < 2
    report = {
        "scenario_count": SCENARIO_COUNT,
        "usable_cpus": cpus,
        "calibration_s": _calibrate(),
        "serial_s": timings["serial"],
        "workers2_s": timings["workers2"],
        "workers4_s": timings["workers4"],
        "seconds_per_simulation": timings["serial"] / SCENARIO_COUNT,
        "speedup_workers2": timings["serial"] / timings["workers2"],
        "speedup_workers4": timings["serial"] / timings["workers4"],
        "speedup_note": (
            "single-core runner: speedups annotated, not asserted"
            if single_core
            else None
        ),
        "fleet_scaling": fleet_axis,
        "traffic": traffic_axis,
        "burst": burst_axis,
        "sabre": sabre_axis,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print(f"\n\nEngine scaling ({SCENARIO_COUNT} scenarios, {cpus} cpu(s)):")
        print(f"  serial    : {report['serial_s']:.2f}s")
        print(f"  2 workers : {report['workers2_s']:.2f}s "
              f"({report['speedup_workers2']:.2f}x)")
        print(f"  4 workers : {report['workers4_s']:.2f}s "
              f"({report['speedup_workers4']:.2f}x)")
        for label, entry in fleet_axis.items():
            print(f"  {label}    : {entry['wall_s']:.2f}s for "
                  f"{entry['scenario_count']} sims "
                  f"({entry['seconds_per_simulation']:.2f}s/sim)")
        print(f"  traffic   : {traffic_axis['wall_s']:.2f}s for "
              f"{traffic_axis['scenario_count']} sims "
              f"({traffic_axis['seconds_per_simulation']:.2f}s/sim, "
              f"{traffic_axis['traffic_injections']} injections)")
        print(f"  burst     : {burst_axis['wall_s']:.2f}s for "
              f"{burst_axis['scenario_count']} sims "
              f"({burst_axis['seconds_per_simulation']:.2f}s/sim, "
              f"{burst_axis['recoveries']} recoveries)")
        for label, axis in (("traffic", traffic_axis), ("burst", burst_axis)):
            print(f"  {label:<9} : adaptive {axis['wall_s_adaptive']:.2f}s "
                  f"({axis['seconds_per_simulation_adaptive']:.2f}s/sim, "
                  f"{axis['adaptive_speedup']:.2f}x vs reference, "
                  "verdicts identical)")
        print(f"  sabre     : {sabre_axis['serial_s']:.2f}s serial vs "
              f"{sabre_axis['pool_s']:.2f}s pooled "
              f"({sabre_axis['speedup_pool4']:.2f}x, "
              f"{sabre_axis['simulations']} sims, "
              f"per_dequeue={sabre_axis['per_dequeue']}, "
              f"{sabre_axis['proposal_rounds']} rounds)")
        if single_core:
            print(f"  note      : {report['speedup_note']}")
        print(f"  written to {OUTPUT_PATH}")

    # Speedups are annotations on single-core runners, assertions
    # everywhere else.
    if cpus >= 4:
        assert report["speedup_workers4"] > 1.5
    elif cpus >= 2:
        assert report["speedup_workers2"] > 1.2
