"""Figures 1, 9 and 10: the case-study traces.

* Figure 1: an IMU (accelerometer) failure at the end of the landing
  triggers the GPS fail-safe and the vehicle crashes.
* Figure 9 (APM-16021): an accelerometer fault late in the takeoff climb
  causes an overshoot, an overcorrection, and a crash.
* Figure 10 (APM-16967): a compass failure between waypoints causes the
  land fail-safe to engage and the vehicle to crash near the ground.

Each benchmark prints the golden and fault-injected altitude series (the
data behind the published plots) and asserts the qualitative shape: the
golden run lands safely, the faulted run ends in an unsafe condition of
the published kind.
"""

from repro.analysis import case_study_apm16021, case_study_apm16967, case_study_figure1


def _print_series(capsys, title, case):
    with capsys.disabled():
        print(f"\n\n{title}")
        print(f"  golden run:  peak {case.golden.peak_altitude:5.1f} m, "
              f"final {case.golden.final_altitude:5.1f} m, "
              f"duration {case.golden.times[-1]:5.1f} s")
        print(f"  faulted run: peak {case.faulted.peak_altitude:5.1f} m, "
              f"final {case.faulted.final_altitude:5.1f} m, "
              f"duration {case.faulted.times[-1]:5.1f} s")
        print(f"  injected:    {case.faulted_run.scenario.describe()}")
        print(f"  violations:  {[c.kind.value for c in case.faulted_run.unsafe_conditions]}")
        print(f"  root cause:  {case.faulted_run.triggered_bugs}")


def test_figure1_landing_imu_failure(benchmark, capsys):
    case = benchmark.pedantic(case_study_figure1, rounds=1, iterations=1)
    _print_series(capsys, "Figure 1 -- IMU failure at the end of the landing:", case)
    assert not case.golden_run.found_unsafe_condition
    assert case.unsafe
    assert case.crashed
    assert "APM-16682" in case.faulted_run.triggered_bugs


def test_figure9_apm16021_takeoff_overshoot(benchmark, capsys):
    case = benchmark.pedantic(case_study_apm16021, rounds=1, iterations=1)
    _print_series(capsys, "Figure 9 -- APM-16021 accelerometer fault during takeoff:", case)
    assert case.unsafe
    assert "APM-16021" in case.faulted_run.triggered_bugs
    # The faulted run overshoots the 20 m target before things go wrong.
    assert case.faulted.peak_altitude > case.golden.peak_altitude + 1.0


def test_figure10_apm16967_compass_failure(benchmark, capsys):
    case = benchmark.pedantic(case_study_apm16967, rounds=1, iterations=1)
    _print_series(capsys, "Figure 10 -- APM-16967 compass failure between waypoints:", case)
    assert case.unsafe
    assert "APM-16967" in case.faulted_run.triggered_bugs
    # The run is cut short relative to the golden run (crash / abort).
    assert case.faulted_run.duration_s < case.golden_run.duration_s + 1.0
