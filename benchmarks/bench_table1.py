"""Table I: distinguishing features of the fault-injection approaches."""

from repro.analysis import table1_feature_matrix
from repro.core.report import format_table


def test_table1_feature_matrix(benchmark, capsys):
    rows = benchmark(table1_feature_matrix)
    table = format_table(
        ["approach", "targets transitions", "prior bugs", "dissimilar first"], rows
    )
    with capsys.disabled():
        print("\n\nTable I -- distinguishing features of the approaches:")
        print(table)
    matrix = {row[0]: row[1:] for row in rows}
    # The paper's check-mark pattern.
    assert matrix["avis"] == ("yes", "yes", "yes")
    assert matrix["stratified-bfi"] == ("no", "yes", "yes")
    assert matrix["bfi"] == ("no", "yes", "no")
    assert matrix["random"] == ("no", "no", "yes")
